//! Shared-memory collectives over thread groups.
//!
//! A [`Group`] is the moral equivalent of an NCCL communicator: a fixed set
//! of ranks that issue the *same sequence* of collective calls (SPMD).
//! Collectives are no longer faked on a shared blackboard: each call builds
//! the transport-agnostic step [`Program`] from `megatron-collective` (ring
//! all-reduce / all-gather / reduce-scatter, pipelined ring broadcast,
//! two-level hierarchical all-reduce) and executes it over per-rank
//! point-to-point mailboxes, moving actual `f32` chunks between rank
//! threads. Reduction work is spread across ranks — each combines its own
//! incoming chunks — instead of serializing on one mutex per buffer, and
//! every rank still ends bit-identical because the all-gather phase
//! replicates the very chunks that were reduced.
//!
//! Per-member [`CommVolume`] tallies accumulate from the transport-level
//! messages this rank actually sent, so "real bytes == simulated bytes" is
//! a structural identity with `megatron-net`'s lowering of the same
//! programs, not a pair of formulas that happen to agree.
//!
//! Failure handling: mailboxes and the barrier are poisonable. When a
//! member thread panics (its [`GroupMember`] is dropped mid-unwind) or a
//! rank is deliberately killed via [`GroupMember::poison`], every peer
//! blocked in — or later entering — a collective gets
//! [`CommError::Poisoned`] instead of hanging. A rank that simply stops
//! communicating trips [`CommError::Timeout`] in its peers after the
//! group's configured timeout — now carrying a [`StallContext`] naming the
//! collective, the step, and the peer that stalled — and poisons the group
//! so the failure propagates.

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use megatron_collective::{
    self as coll, mix_seed, FaultTally, FaultyTransport, PollTransport, Program, ReduceOp,
    ReliableTransport, RetransmitStore, RetryPolicy, RetryStats, SocketChannel, SocketError,
    TransientFaults, Transport,
};

/// Seeded transient-fault profile for a group's wire: which faults to
/// inject and the base seed the per-rank / per-collective streams derive
/// from (see [`mix_seed`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultProfile {
    /// Base seed; each (rank, collective) pair gets an independent stream.
    pub seed: u64,
    /// What to inject.
    pub faults: TransientFaults,
}

/// Which wire a group's step programs execute over.
///
/// `Mailbox` is the in-process default. The socket kinds declare *process
/// mode*: ranks are separate OS processes, the group is built with
/// [`Group::with_socket`], and every collective crosses a real kernel
/// socket (`megatron_collective::socket`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum WireKind {
    /// In-process mailboxes between rank threads (the default).
    #[default]
    Mailbox,
    /// Unix-domain sockets between rank processes.
    Uds,
    /// TCP sockets between rank processes (loopback or cross-host).
    Tcp,
}

impl WireKind {
    /// Does this wire kind run over real sockets?
    pub fn is_socket(&self) -> bool {
        matches!(self, WireKind::Uds | WireKind::Tcp)
    }
}

/// Wire configuration of a [`Group`]: which wire carries the chunks,
/// whether sends pass through a seeded fault injector, and whether the
/// reliable retry/retransmit layer is armed to absorb those faults (see
/// `megatron_collective::reliable`).
///
/// The default — mailbox wire, no faults, no retry — is byte-for-byte the
/// plain mailbox path: no framing overhead, no behavior change.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TransportConfig {
    /// Which wire the collectives run over. `Uds`/`Tcp` is declarative:
    /// the launcher reads it to decide process mode, and
    /// [`Group::with_socket`] supplies the actual channel.
    pub wire: WireKind,
    /// Arm the reliable delivery layer with this policy.
    pub retry: Option<RetryPolicy>,
    /// Inject seeded transient faults under the reliable layer.
    pub faults: Option<FaultProfile>,
}

/// Bytes per element of the real engine's `f32` payloads. (The paper's
/// analytical formulas in `megatron-parallel` assume fp16, i.e. 2 bytes —
/// counted volumes are exactly `4 / 2 = 2×` those formulas.)
pub const BYTES_F32: f64 = 4.0;

/// Per-rank bytes a ring all-reduce of `n` f32 elements moves over `g`
/// ranks: `2 · (g−1)/g · n` elements (reduce-scatter + all-gather phases,
/// paper §3.2's `(t−1)/t` factor). Exact for divisible `n` and for `g = 2`
/// at any `n`; the measured tallies use the actual chunk ranges.
pub fn ring_all_reduce_bytes(g: usize, n: usize) -> f64 {
    if g <= 1 {
        return 0.0;
    }
    2.0 * (g as f64 - 1.0) / g as f64 * n as f64 * BYTES_F32
}

/// Per-rank bytes a ring all-gather moves when each rank contributes
/// `part` f32 elements: `(g−1) · part`.
pub fn ring_all_gather_bytes(g: usize, part: usize) -> f64 {
    if g <= 1 {
        return 0.0;
    }
    (g as f64 - 1.0) * part as f64 * BYTES_F32
}

/// Per-rank bytes a ring reduce-scatter of `n` f32 elements moves:
/// `(g−1)/g · n`.
pub fn ring_reduce_scatter_bytes(g: usize, n: usize) -> f64 {
    if g <= 1 {
        return 0.0;
    }
    (g as f64 - 1.0) / g as f64 * n as f64 * BYTES_F32
}

/// Bytes the *root* sends in a pipelined ring broadcast of `n` f32
/// elements (the whole buffer streams through the ring once; the last
/// position sends nothing).
pub fn broadcast_bytes(g: usize, n: usize) -> f64 {
    if g <= 1 {
        return 0.0;
    }
    n as f64 * BYTES_F32
}

/// Running per-member tally of algorithmic communication volume, split by
/// collective type. Volumes are the bytes this rank's transport actually
/// sent (egress), accumulated message by message as the step programs
/// execute — what this rank's NIC would move on real hardware.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CommVolume {
    /// Bytes from all-reduce (sum/max/mean, flat or hierarchical) calls.
    pub all_reduce_bytes: f64,
    /// Bytes from all-gather calls.
    pub all_gather_bytes: f64,
    /// Bytes from reduce-scatter calls.
    pub reduce_scatter_bytes: f64,
    /// Bytes from broadcast calls.
    pub broadcast_bytes: f64,
    /// Number of completed collectives (size-1 no-ops excluded).
    pub ops: u64,
}

impl CommVolume {
    /// Total bytes across all collective types.
    pub fn total_bytes(&self) -> f64 {
        self.all_reduce_bytes
            + self.all_gather_bytes
            + self.reduce_scatter_bytes
            + self.broadcast_bytes
    }

    /// Element-wise sum of two tallies.
    #[must_use]
    pub fn plus(&self, other: &CommVolume) -> CommVolume {
        CommVolume {
            all_reduce_bytes: self.all_reduce_bytes + other.all_reduce_bytes,
            all_gather_bytes: self.all_gather_bytes + other.all_gather_bytes,
            reduce_scatter_bytes: self.reduce_scatter_bytes + other.reduce_scatter_bytes,
            broadcast_bytes: self.broadcast_bytes + other.broadcast_bytes,
            ops: self.ops + other.ops,
        }
    }
}

/// One collective this member completed, recorded for replay: feeding the
/// same ops through `megatron-net`'s lowering reproduces, task for task,
/// the byte flow the real transport just moved (the real-vs-sim identity
/// test drives exactly this).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CollectiveOp {
    /// Which algorithm ran.
    pub kind: CollectiveKind,
    /// Buffer elements (for all-gather: the per-rank contribution).
    pub elems: usize,
}

/// The algorithm of a recorded [`CollectiveOp`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CollectiveKind {
    /// Flat ring all-reduce (sum, max, and mean all share the wire shape).
    AllReduce,
    /// Ring all-gather (`elems` = per-rank contribution).
    AllGather,
    /// Ring reduce-scatter.
    ReduceScatter,
    /// Pipelined ring broadcast from `root`.
    Broadcast {
        /// Broadcasting rank.
        root: usize,
    },
    /// Two-level hierarchical all-reduce with `local` ranks per node.
    HierarchicalAllReduce {
        /// Ranks per node.
        local: usize,
    },
}

impl CollectiveOp {
    /// The exact step program this op executed over `ranks` ranks.
    pub fn program(&self, ranks: usize) -> Program {
        match self.kind {
            CollectiveKind::AllReduce => coll::ring_all_reduce(ranks, self.elems, ReduceOp::Sum),
            CollectiveKind::AllGather => coll::ring_all_gather(ranks, self.elems),
            CollectiveKind::ReduceScatter => {
                coll::ring_reduce_scatter(ranks, self.elems, ReduceOp::Sum)
            }
            CollectiveKind::Broadcast { root } => coll::ring_broadcast(ranks, self.elems, root),
            CollectiveKind::HierarchicalAllReduce { local } => {
                coll::hierarchical_all_reduce(ranks, self.elems, local, ReduceOp::Sum)
            }
        }
    }
}

/// Default collective timeout; generous next to the microseconds a healthy
/// shared-memory collective takes, so it only fires on real failures.
pub const DEFAULT_COMM_TIMEOUT: Duration = Duration::from_secs(30);

/// Where a timed-out collective stalled: which algorithm, which of its
/// steps, and which peer never delivered (or accepted) a chunk. In process
/// mode the peer is further identified by its OS pid (from its hello
/// frame) and listener address, so a stall is debuggable from one rank's
/// log alone.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StallContext {
    /// Collective name (`Program::kind`, or `"barrier"`).
    pub collective: &'static str,
    /// Zero-based step that stalled.
    pub round: usize,
    /// Total steps in the collective.
    pub rounds: usize,
    /// The peer involved in the stalled step; `None` for a bare barrier,
    /// where any absent rank stalls everyone.
    pub peer: Option<usize>,
    /// The stalled peer's OS process id (process mode only, and only if
    /// the peer ever connected).
    pub peer_pid: Option<u32>,
    /// The stalled peer's socket address (process mode only).
    pub peer_addr: Option<String>,
}

impl StallContext {
    /// A context with no process-mode identity (thread mode, or the peer
    /// never connected).
    pub fn new(
        collective: &'static str,
        round: usize,
        rounds: usize,
        peer: Option<usize>,
    ) -> StallContext {
        StallContext {
            collective,
            round,
            rounds,
            peer,
            peer_pid: None,
            peer_addr: None,
        }
    }
}

impl fmt::Display for StallContext {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.peer {
            Some(p) => {
                write!(
                    f,
                    "{} timed out at step {}/{} waiting on rank {}",
                    self.collective,
                    self.round + 1,
                    self.rounds,
                    p
                )?;
                match (&self.peer_pid, &self.peer_addr) {
                    (Some(pid), Some(addr)) => write!(f, " (pid {pid}, {addr})"),
                    (Some(pid), None) => write!(f, " (pid {pid})"),
                    (None, Some(addr)) => write!(f, " ({addr})"),
                    (None, None) => Ok(()),
                }
            }
            None => write!(f, "{} timed out waiting for a peer", self.collective),
        }
    }
}

/// A collective failed instead of hanging.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommError {
    /// A peer did not move within the group timeout; the context names the
    /// stalled step. The group is poisoned as a side effect.
    Timeout(StallContext),
    /// The group was poisoned: a peer panicked mid-collective, was killed
    /// via [`GroupMember::poison`], or previously timed out.
    Poisoned,
}

impl fmt::Display for CommError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommError::Timeout(ctx) => ctx.fmt(f),
            CommError::Poisoned => write!(f, "communicator group is poisoned"),
        }
    }
}

impl std::error::Error for CommError {}

/// Typed panic payload thrown by the infallible collective wrappers
/// ([`GroupMember::all_reduce_sum`] and friends) when the communicator
/// fails. The trainer downcasts to this when classifying a worker panic,
/// so a comm failure can never be confused with any other panic no matter
/// how the message is worded.
#[derive(Debug, Clone)]
pub struct CommPanic(pub CommError);

impl fmt::Display for CommPanic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "collective failed: {}", self.0)
    }
}

/// Panic with a typed [`CommPanic`] payload on `Err`.
fn expect_comm<T>(r: Result<T, CommError>) -> T {
    match r {
        Ok(v) => v,
        Err(e) => std::panic::panic_any(CommPanic(e)),
    }
}

/// A recorded collective's op tag plus the [`CommVolume`] field its byte
/// tally accumulates into.
type VolumeRecord = (CollectiveOp, fn(&mut CommVolume) -> &mut f64);

/// Transport-level failure, before step context is attached.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RawComm {
    Timeout,
    Poisoned,
}

/// One directed point-to-point channel between two ranks of a group.
struct Mailbox {
    q: Mutex<VecDeque<Vec<f32>>>,
    cv: Condvar,
}

impl Mailbox {
    fn new() -> Mailbox {
        Mailbox {
            q: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
        }
    }
}

/// Condvar-based rendezvous barrier that can be poisoned and waited on
/// with a timeout. Reusable across generations like [`std::sync::Barrier`].
struct PoisonBarrier {
    state: Mutex<BarrierState>,
    cv: Condvar,
    size: usize,
}

struct BarrierState {
    arrived: usize,
    generation: u64,
    poisoned: bool,
}

impl PoisonBarrier {
    fn new(size: usize) -> PoisonBarrier {
        PoisonBarrier {
            state: Mutex::new(BarrierState {
                arrived: 0,
                generation: 0,
                poisoned: false,
            }),
            cv: Condvar::new(),
            size,
        }
    }

    fn wait(&self, timeout: Duration) -> Result<(), RawComm> {
        // A peer that panicked while holding the barrier lock is a dead
        // peer: surface it as a poisoned group, never a second panic.
        let Ok(mut s) = self.state.lock() else {
            return Err(RawComm::Poisoned);
        };
        if s.poisoned {
            return Err(RawComm::Poisoned);
        }
        s.arrived += 1;
        if s.arrived == self.size {
            s.arrived = 0;
            s.generation = s.generation.wrapping_add(1);
            self.cv.notify_all();
            return Ok(());
        }
        let gen = s.generation;
        let deadline = Instant::now() + timeout;
        loop {
            if s.generation != gen {
                // The barrier completed for our generation; a poison flag
                // raised afterwards belongs to a later collective.
                return Ok(());
            }
            if s.poisoned {
                return Err(RawComm::Poisoned);
            }
            let now = Instant::now();
            if now >= deadline {
                // Give up, and poison so the stuck peers (and the late
                // rank, if it ever shows up) fail fast instead of hanging.
                s.poisoned = true;
                self.cv.notify_all();
                return Err(RawComm::Timeout);
            }
            s = match self.cv.wait_timeout(s, deadline - now) {
                Ok(pair) => pair.0,
                Err(_) => return Err(RawComm::Poisoned),
            };
        }
    }

    fn poison(&self) {
        // Poisoning must succeed even if a dying thread poisoned the
        // mutex first — that is exactly when waiters most need the wakeup.
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        s.poisoned = true;
        self.cv.notify_all();
    }

    fn is_poisoned(&self) -> bool {
        match self.state.lock() {
            Ok(s) => s.poisoned,
            Err(_) => true,
        }
    }
}

/// The socket side of a process-mode group: this process's one member
/// executes its programs over this channel instead of the mailboxes.
struct SocketState {
    rank: usize,
    chan: Mutex<SocketChannel>,
}

/// Shared state of one communicator group: one mailbox per directed rank
/// pair plus a poisonable barrier for pure synchronization — or, in
/// process mode ([`Group::with_socket`]), a kernel-socket channel carrying
/// the same step programs to peer *processes*.
pub struct Group {
    size: usize,
    // mail[dst * size + src]: chunks in flight from src to dst.
    mail: Vec<Mailbox>,
    barrier: PoisonBarrier,
    poisoned: AtomicBool,
    timeout: Duration,
    transport: TransportConfig,
    // Shared sender-side frame log, allocated only when retry is armed.
    // `Arc` so thread-per-rank socket rigs can share one store across
    // their per-rank groups (recovery reads the *sender's* log).
    retransmit: Option<Arc<RetransmitStore>>,
    // Process mode: the socket channel this process's member speaks over.
    socket: Option<SocketState>,
}

impl Group {
    /// Create a group of `size` ranks; hand one [`GroupMember`] per rank to
    /// its thread via [`Group::member`]. Collectives use
    /// [`DEFAULT_COMM_TIMEOUT`].
    pub fn new(size: usize) -> Arc<Group> {
        Group::with_timeout(size, DEFAULT_COMM_TIMEOUT)
    }

    /// Like [`Group::new`] with an explicit collective timeout.
    pub fn with_timeout(size: usize, timeout: Duration) -> Arc<Group> {
        Group::with_config(size, timeout, TransportConfig::default())
    }

    /// Like [`Group::with_timeout`] with an explicit wire configuration
    /// (fault injection and/or the reliable retry layer).
    pub fn with_config(size: usize, timeout: Duration, transport: TransportConfig) -> Arc<Group> {
        assert!(size > 0);
        Arc::new(Group {
            size,
            mail: (0..size * size).map(|_| Mailbox::new()).collect(),
            barrier: PoisonBarrier::new(size),
            poisoned: AtomicBool::new(false),
            timeout,
            retransmit: transport
                .retry
                .map(|_| Arc::new(RetransmitStore::new(size))),
            transport,
            socket: None,
        })
    }

    /// A *process-mode* group: this `Group` instance hosts exactly one
    /// member — `channel.rank()` — and every collective executes over the
    /// socket channel to peer processes. Barriers ride the wire too (a
    /// 1-element all-reduce), since no shared-memory barrier can span
    /// processes. Peer death surfaces as [`CommError::Timeout`] once the
    /// group timeout expires, never as `Poisoned` (poison cannot cross an
    /// address space).
    pub fn with_socket(
        size: usize,
        timeout: Duration,
        transport: TransportConfig,
        channel: SocketChannel,
    ) -> Arc<Group> {
        let store = transport
            .retry
            .map(|_| Arc::new(RetransmitStore::new(size)));
        Group::with_socket_shared_store(size, timeout, transport, channel, store)
    }

    /// Like [`Group::with_socket`], with an explicit (possibly shared)
    /// retransmit store. Thread-per-rank rigs that run *real sockets
    /// within one process* pass one `Arc` to every rank's group so the
    /// reliable layer can recover lost frames from the sender's log. In
    /// true multi-process mode each process's store only ever sees its own
    /// sends, so store-based recovery is inert — instead, whenever retry is
    /// armed the socket channel's sender-side *replay log* is enabled:
    /// after a torn connection the reconnect resends the whole recent
    /// frame window (covering frames lost or only partially written when
    /// the wire broke), and the reliable layer's sequence numbers discard
    /// the duplicates. Cross-process delivery is therefore bit-exact under
    /// mid-frame severs too.
    pub fn with_socket_shared_store(
        size: usize,
        timeout: Duration,
        transport: TransportConfig,
        channel: SocketChannel,
        store: Option<Arc<RetransmitStore>>,
    ) -> Arc<Group> {
        assert!(size > 0);
        assert!(channel.rank() < size, "channel rank outside the group");
        let mut channel = channel;
        if transport.retry.is_some() {
            // Sound only under the reliable layer (replay duplicates
            // already-delivered frames; seq numbers absorb them).
            channel.enable_replay();
        }
        Arc::new(Group {
            size,
            mail: Vec::new(),
            barrier: PoisonBarrier::new(1),
            poisoned: AtomicBool::new(false),
            timeout,
            retransmit: store,
            transport,
            socket: Some(SocketState {
                rank: channel.rank(),
                chan: Mutex::new(channel),
            }),
        })
    }

    /// The member handle for `rank`.
    pub fn member(self: &Arc<Group>, rank: usize) -> GroupMember {
        assert!(rank < self.size);
        if let Some(sock) = &self.socket {
            assert!(
                rank == sock.rank,
                "a process-mode group hosts exactly one member (rank {})",
                sock.rank
            );
        }
        GroupMember {
            group: Arc::clone(self),
            rank,
            volume: Cell::new(CommVolume::default()),
            op_log: RefCell::new(Vec::new()),
            programs_run: Cell::new(0),
            retry_stats: Cell::new(RetryStats::default()),
            fault_tally: Cell::new(FaultTally::default()),
        }
    }

    /// Ranks in the group.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Whether the group has been poisoned by a failure.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::Acquire) || self.barrier.is_poisoned()
    }

    /// Poison everything: flag, every mailbox (waking blocked receivers),
    /// and the barrier.
    fn poison_all(&self) {
        self.poisoned.store(true, Ordering::Release);
        for mb in &self.mail {
            // Take the lock so a receiver between its poison check and its
            // condvar wait cannot miss the wakeup. A mutex a dead peer
            // poisoned must not stop the cleanup.
            let _q = mb.q.lock().unwrap_or_else(|e| e.into_inner());
            mb.cv.notify_all();
        }
        self.barrier.poison();
    }

    /// Enqueue a chunk for `dst` (non-blocking; mailboxes are unbounded).
    fn post(&self, src: usize, dst: usize, payload: &[f32]) -> Result<(), RawComm> {
        if self.poisoned.load(Ordering::Acquire) {
            return Err(RawComm::Poisoned);
        }
        let mb = &self.mail[dst * self.size + src];
        let Ok(mut q) = mb.q.lock() else {
            return Err(RawComm::Poisoned);
        };
        q.push_back(payload.to_vec());
        mb.cv.notify_all();
        Ok(())
    }

    /// Dequeue the next chunk sent from `src` to `dst`, waiting until
    /// `deadline`. Queued data wins over poison (a completed send should
    /// be consumable), and a deadline miss poisons the whole group.
    fn fetch(&self, src: usize, dst: usize, deadline: Instant) -> Result<Vec<f32>, RawComm> {
        let mb = &self.mail[dst * self.size + src];
        let Ok(mut q) = mb.q.lock() else {
            return Err(RawComm::Poisoned);
        };
        loop {
            if let Some(data) = q.pop_front() {
                return Ok(data);
            }
            if self.poisoned.load(Ordering::Acquire) {
                return Err(RawComm::Poisoned);
            }
            let now = Instant::now();
            if now >= deadline {
                drop(q);
                self.poison_all();
                return Err(RawComm::Timeout);
            }
            q = match mb.cv.wait_timeout(q, deadline - now) {
                Ok(pair) => pair.0,
                Err(_) => return Err(RawComm::Poisoned),
            };
        }
    }

    /// Like [`Group::fetch`], but give up *softly* after `wait`: `Ok(None)`
    /// leaves the group healthy so the reliable layer can recover the
    /// chunk from the retransmit store and poll again. Only the overall
    /// `deadline` poisons, exactly as `fetch` would.
    fn fetch_within(
        &self,
        src: usize,
        dst: usize,
        wait: Duration,
        deadline: Instant,
    ) -> Result<Option<Vec<f32>>, RawComm> {
        let attempt_end = (Instant::now() + wait).min(deadline);
        let mb = &self.mail[dst * self.size + src];
        let Ok(mut q) = mb.q.lock() else {
            return Err(RawComm::Poisoned);
        };
        loop {
            if let Some(data) = q.pop_front() {
                return Ok(Some(data));
            }
            if self.poisoned.load(Ordering::Acquire) {
                return Err(RawComm::Poisoned);
            }
            let now = Instant::now();
            if now >= deadline {
                drop(q);
                self.poison_all();
                return Err(RawComm::Timeout);
            }
            if now >= attempt_end {
                return Ok(None);
            }
            q = match mb.cv.wait_timeout(q, attempt_end - now) {
                Ok(pair) => pair.0,
                Err(_) => return Err(RawComm::Poisoned),
            };
        }
    }
}

/// The mailbox-backed [`Transport`] one rank executes step programs over.
struct MailTransport<'a> {
    group: &'a Group,
    rank: usize,
    deadline: Instant,
}

impl Transport for MailTransport<'_> {
    type Error = RawComm;

    fn send(&mut self, to: usize, payload: &[f32]) -> Result<(), RawComm> {
        self.group.post(self.rank, to, payload)
    }

    fn recv(&mut self, from: usize) -> Result<Vec<f32>, RawComm> {
        self.group.fetch(from, self.rank, self.deadline)
    }
}

impl PollTransport for MailTransport<'_> {
    fn recv_within(&mut self, from: usize, wait: Duration) -> Result<Option<Vec<f32>>, RawComm> {
        self.group
            .fetch_within(from, self.rank, wait, self.deadline)
    }
}

/// The socket-backed [`Transport`] of a process-mode group: a thin error
/// adapter over [`SocketChannel`]. Both a dead peer (deadline) and a hard
/// I/O failure surface as [`RawComm::Timeout`] — from this rank's view the
/// peer stopped moving, and the step context names it.
struct SockTransport<'a> {
    chan: &'a mut SocketChannel,
}

fn raw_from_socket(_: SocketError) -> RawComm {
    RawComm::Timeout
}

impl Transport for SockTransport<'_> {
    type Error = RawComm;

    fn send(&mut self, to: usize, payload: &[f32]) -> Result<(), RawComm> {
        self.chan.send(to, payload).map_err(raw_from_socket)
    }

    fn recv(&mut self, from: usize) -> Result<Vec<f32>, RawComm> {
        self.chan.recv(from).map_err(raw_from_socket)
    }
}

impl PollTransport for SockTransport<'_> {
    fn recv_within(&mut self, from: usize, wait: Duration) -> Result<Option<Vec<f32>>, RawComm> {
        self.chan.recv_within(from, wait).map_err(raw_from_socket)
    }
}

/// One rank's handle to a [`Group`]. Every collective must be called by all
/// ranks of the group, in the same order.
pub struct GroupMember {
    group: Arc<Group>,
    rank: usize,
    // `Cell`/`RefCell`, not atomics: a member belongs to exactly one rank
    // thread, so accounting costs a register copy, never a contended write.
    volume: Cell<CommVolume>,
    op_log: RefCell<Vec<CollectiveOp>>,
    // Collectives started by this member: the per-operation word of the
    // deterministic fault-stream seed.
    programs_run: Cell<u64>,
    retry_stats: Cell<RetryStats>,
    fault_tally: Cell<FaultTally>,
}

impl GroupMember {
    /// This member's rank within the group.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Group size.
    pub fn size(&self) -> usize {
        self.group.size
    }

    /// The algorithmic communication volume this member has completed.
    pub fn comm_volume(&self) -> CommVolume {
        self.volume.get()
    }

    /// Reset the tally, returning the previous value.
    pub fn take_comm_volume(&self) -> CommVolume {
        self.volume.replace(CommVolume::default())
    }

    /// Drain the log of collectives this member has completed (size-1
    /// no-ops excluded), in execution order.
    pub fn take_op_log(&self) -> Vec<CollectiveOp> {
        std::mem::take(&mut self.op_log.borrow_mut())
    }

    /// Poison the group: every peer blocked in — or later entering — a
    /// collective gets [`CommError::Poisoned`]. Used to simulate killing
    /// this rank; also invoked automatically when a member thread panics.
    pub fn poison(&self) {
        self.group.poison_all();
    }

    /// Retry-layer counters accumulated by this member's collectives
    /// (all zero unless the group was built with a retry policy).
    pub fn retry_stats(&self) -> RetryStats {
        self.retry_stats.get()
    }

    /// Transient faults injected into this member's sends (all zero unless
    /// the group was built with a fault profile).
    pub fn fault_tally(&self) -> FaultTally {
        self.fault_tally.get()
    }

    /// Execute `prog` over the mailbox transport, tally the measured
    /// egress into `slot`, and record `op` for replay.
    ///
    /// When the group carries a [`TransportConfig`], the mailbox is
    /// wrapped accordingly: a seeded [`FaultyTransport`] plays adversary
    /// on the wire and a [`ReliableTransport`] above it absorbs the
    /// faults, so transient drops/duplicates/delays never surface as
    /// [`CommError::Timeout`] while the retransmit budget lasts.
    fn run_program(
        &self,
        prog: &Program,
        buf: &mut [f32],
        op: CollectiveOp,
        slot: fn(&mut CommVolume) -> &mut f64,
    ) -> Result<(), CommError> {
        self.run_program_impl(prog, buf, Some((op, slot)))
    }

    /// Wrap `tp` per the group's [`TransportConfig`] and execute `prog`.
    fn execute_wrapped<T: PollTransport<Error = RawComm>>(
        &self,
        prog: &Program,
        buf: &mut [f32],
        op_index: u64,
        tp: T,
    ) -> Result<coll::ExecReport, coll::StepFailure<RawComm>> {
        let per_op_seed = |p: &FaultProfile| mix_seed(p.seed, (self.rank as u64) << 32 | op_index);
        // A retry policy is only usable with its retransmit store; a group
        // rebuilt without one (e.g. after a topology change) degrades to
        // the plain transport instead of aborting the worker.
        let retry = self
            .group
            .transport
            .retry
            .and_then(|policy| self.group.retransmit.as_ref().map(|store| (policy, store)));
        match (retry, self.group.transport.faults) {
            (Some((policy, store)), profile) => {
                let seed = profile.as_ref().map_or(0, per_op_seed);
                let faults = profile.map(|p| p.faults).unwrap_or_default();
                let faulty = FaultyTransport::new(tp, faults, seed);
                let mut rel = ReliableTransport::new(faulty, store, self.rank, policy);
                let result = coll::execute(prog, self.rank, buf, &mut rel);
                let (faulty, stats) = rel.into_parts();
                let (_, tally) = faulty.into_parts();
                self.retry_stats.set(self.retry_stats.get().plus(&stats));
                self.fault_tally.set(self.fault_tally.get().plus(&tally));
                result
            }
            (None, Some(profile)) => {
                // Faults without the reliable layer: every injected drop
                // becomes a real stall (useful to demonstrate the cost of
                // *not* having the retry layer).
                let mut faulty = FaultyTransport::new(tp, profile.faults, per_op_seed(&profile));
                let result = coll::execute(prog, self.rank, buf, &mut faulty);
                let (_, tally) = faulty.into_parts();
                self.fault_tally.set(self.fault_tally.get().plus(&tally));
                result
            }
            (None, None) => {
                let mut tp = tp;
                coll::execute(prog, self.rank, buf, &mut tp)
            }
        }
    }

    /// Execute `prog` over the group's wire — mailboxes, or the socket
    /// channel in process mode — recording volume and the op log only when
    /// `record` is given (barriers ride unrecorded so tallies stay purely
    /// algorithmic).
    fn run_program_impl(
        &self,
        prog: &Program,
        buf: &mut [f32],
        record: Option<VolumeRecord>,
    ) -> Result<(), CommError> {
        if self.group.is_poisoned() {
            return Err(CommError::Poisoned);
        }
        let op_index = self.programs_run.get();
        self.programs_run.set(op_index + 1);
        let result = if let Some(sock) = &self.group.socket {
            let mut chan = sock.chan.lock().unwrap();
            chan.set_deadline(Instant::now() + self.group.timeout);
            self.execute_wrapped(prog, buf, op_index, SockTransport { chan: &mut chan })
        } else {
            let tp = MailTransport {
                group: &self.group,
                rank: self.rank,
                deadline: Instant::now() + self.group.timeout,
            };
            self.execute_wrapped(prog, buf, op_index, tp)
        };
        match result {
            Ok(report) => {
                if let Some((op, slot)) = record {
                    let mut v = self.volume.get();
                    *slot(&mut v) += report.sent_elems as f64 * BYTES_F32;
                    v.ops += 1;
                    self.volume.set(v);
                    self.op_log.borrow_mut().push(op);
                }
                Ok(())
            }
            Err(fail) => Err(match fail.error {
                RawComm::Poisoned => CommError::Poisoned,
                RawComm::Timeout => {
                    // The mailbox path poisons inside `fetch`; the socket
                    // path poisons here so later calls fail fast too.
                    self.group.poison_all();
                    let mut ctx = StallContext::new(
                        fail.collective,
                        fail.round,
                        fail.rounds,
                        Some(fail.peer),
                    );
                    if let Some(sock) = &self.group.socket {
                        let chan = sock.chan.lock().unwrap();
                        ctx.peer_pid = chan.peer_pid(fail.peer);
                        ctx.peer_addr = chan.peer_addr(fail.peer).map(|a| a.to_string());
                    }
                    CommError::Timeout(ctx)
                }
            }),
        }
    }

    /// Fallible in-place sum all-reduce (ring). Every member ends with a
    /// bit-identical buffer: the all-gather phase replicates the reduced
    /// chunks themselves.
    pub fn try_all_reduce_sum(&self, buf: &mut [f32]) -> Result<(), CommError> {
        let g = self.group.size;
        if g == 1 {
            return Ok(());
        }
        let prog = coll::ring_all_reduce(g, buf.len(), ReduceOp::Sum);
        self.run_program(
            &prog,
            buf,
            CollectiveOp {
                kind: CollectiveKind::AllReduce,
                elems: buf.len(),
            },
            |v| &mut v.all_reduce_bytes,
        )
    }

    /// Fallible in-place element-wise max all-reduce.
    pub fn try_all_reduce_max(&self, buf: &mut [f32]) -> Result<(), CommError> {
        let g = self.group.size;
        if g == 1 {
            return Ok(());
        }
        let prog = coll::ring_all_reduce(g, buf.len(), ReduceOp::Max);
        self.run_program(
            &prog,
            buf,
            CollectiveOp {
                kind: CollectiveKind::AllReduce,
                elems: buf.len(),
            },
            |v| &mut v.all_reduce_bytes,
        )
    }

    /// Fallible in-place mean all-reduce (sum, then scale by `1/size`).
    pub fn try_all_reduce_mean(&self, buf: &mut [f32]) -> Result<(), CommError> {
        self.try_all_reduce_sum(buf)?;
        let k = 1.0 / self.group.size as f32;
        for b in buf {
            *b *= k;
        }
        Ok(())
    }

    /// Fallible two-level hierarchical all-reduce with `local` ranks per
    /// node (§5.9's multi-rail pattern; `size` must divide by `local`).
    /// Same result as [`GroupMember::try_all_reduce_sum`] up to float
    /// reduction order; less inter-node traffic when nodes are real.
    pub fn try_hierarchical_all_reduce_sum(
        &self,
        buf: &mut [f32],
        local: usize,
    ) -> Result<(), CommError> {
        let g = self.group.size;
        if g == 1 {
            return Ok(());
        }
        let prog = coll::hierarchical_all_reduce(g, buf.len(), local, ReduceOp::Sum);
        self.run_program(
            &prog,
            buf,
            CollectiveOp {
                kind: CollectiveKind::HierarchicalAllReduce { local },
                elems: buf.len(),
            },
            |v| &mut v.all_reduce_bytes,
        )
    }

    /// Fallible all-gather: every rank contributes `part`; returns the
    /// rank-ordered concatenation.
    pub fn try_all_gather(&self, part: &[f32]) -> Result<Vec<f32>, CommError> {
        let g = self.group.size;
        if g == 1 {
            return Ok(part.to_vec());
        }
        let mut buf = vec![0.0f32; part.len() * g];
        buf[self.rank * part.len()..(self.rank + 1) * part.len()].copy_from_slice(part);
        let prog = coll::ring_all_gather(g, part.len());
        self.run_program(
            &prog,
            &mut buf,
            CollectiveOp {
                kind: CollectiveKind::AllGather,
                elems: part.len(),
            },
            |v| &mut v.all_gather_bytes,
        )?;
        Ok(buf)
    }

    /// Fallible broadcast of `buf` from `root` to every rank, in place
    /// (pipelined ring: chunks stream `root → root+1 → …`).
    pub fn try_broadcast(&self, buf: &mut [f32], root: usize) -> Result<(), CommError> {
        let g = self.group.size;
        if g == 1 {
            return Ok(());
        }
        let prog = coll::ring_broadcast(g, buf.len(), root);
        self.run_program(
            &prog,
            buf,
            CollectiveOp {
                kind: CollectiveKind::Broadcast { root },
                elems: buf.len(),
            },
            |v| &mut v.broadcast_bytes,
        )
    }

    /// Fallible reduce-scatter: sum contributions, return this rank's
    /// `1/size` shard (buffer length must divide evenly).
    pub fn try_reduce_scatter_sum(&self, buf: &[f32]) -> Result<Vec<f32>, CommError> {
        let g = self.group.size;
        assert!(buf.len().is_multiple_of(g), "uneven reduce-scatter");
        if g == 1 {
            return Ok(buf.to_vec());
        }
        let chunk = buf.len() / g;
        let mut work = buf.to_vec();
        let prog = coll::ring_reduce_scatter(g, buf.len(), ReduceOp::Sum);
        self.run_program(
            &prog,
            &mut work,
            CollectiveOp {
                kind: CollectiveKind::ReduceScatter,
                elems: buf.len(),
            },
            |v| &mut v.reduce_scatter_bytes,
        )?;
        let lo = self.rank * chunk;
        Ok(work[lo..lo + chunk].to_vec())
    }

    /// Fallible synchronization barrier. In process mode no shared-memory
    /// barrier exists, so the ranks exchange a 1-element all-reduce over
    /// the wire instead — unrecorded, so volume tallies stay purely
    /// algorithmic.
    pub fn try_barrier(&self) -> Result<(), CommError> {
        if self.group.is_poisoned() {
            return Err(CommError::Poisoned);
        }
        if self.group.socket.is_some() {
            let g = self.group.size;
            if g == 1 {
                return Ok(());
            }
            let prog = coll::ring_all_reduce(g, 1, ReduceOp::Sum);
            let mut buf = [0.0f32];
            return self.run_program_impl(&prog, &mut buf, None);
        }
        match self.group.barrier.wait(self.group.timeout) {
            Ok(()) => Ok(()),
            Err(RawComm::Poisoned) => Err(CommError::Poisoned),
            Err(RawComm::Timeout) => {
                self.group.poison_all();
                Err(CommError::Timeout(StallContext::new("barrier", 0, 1, None)))
            }
        }
    }

    /// In-place sum all-reduce; panics with [`CommPanic`] on failure.
    pub fn all_reduce_sum(&self, buf: &mut [f32]) {
        expect_comm(self.try_all_reduce_sum(buf));
    }

    /// In-place element-wise max all-reduce; panics with [`CommPanic`] on
    /// failure.
    pub fn all_reduce_max(&self, buf: &mut [f32]) {
        expect_comm(self.try_all_reduce_max(buf));
    }

    /// In-place mean all-reduce; panics with [`CommPanic`] on failure.
    pub fn all_reduce_mean(&self, buf: &mut [f32]) {
        expect_comm(self.try_all_reduce_mean(buf));
    }

    /// All-gather; panics with [`CommPanic`] on failure.
    pub fn all_gather(&self, part: &[f32]) -> Vec<f32> {
        expect_comm(self.try_all_gather(part))
    }

    /// Broadcast from `root`; panics with [`CommPanic`] on failure.
    pub fn broadcast(&self, buf: &mut [f32], root: usize) {
        expect_comm(self.try_broadcast(buf, root));
    }

    /// Reduce-scatter; panics with [`CommPanic`] on failure.
    pub fn reduce_scatter_sum(&self, buf: &[f32]) -> Vec<f32> {
        expect_comm(self.try_reduce_scatter_sum(buf))
    }

    /// Pure synchronization barrier; panics with [`CommPanic`] on failure.
    pub fn barrier(&self) {
        expect_comm(self.try_barrier());
    }
}

impl Drop for GroupMember {
    fn drop(&mut self) {
        // A member dropped while its thread unwinds means the rank died
        // mid-collective-sequence: poison so peers error instead of hanging.
        if std::thread::panicking() {
            self.group.poison_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn run_group<T: Send>(size: usize, f: impl Fn(GroupMember) -> T + Sync) -> Vec<T> {
        let group = Group::new(size);
        thread::scope(|s| {
            let handles: Vec<_> = (0..size)
                .map(|r| {
                    let m = group.member(r);
                    s.spawn(|| f(m))
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        })
    }

    #[test]
    fn all_reduce_sums_and_is_identical() {
        let results = run_group(4, |m| {
            let mut buf = vec![m.rank() as f32, 1.0];
            m.all_reduce_sum(&mut buf);
            buf
        });
        for r in &results {
            assert_eq!(r, &vec![0.0 + 1.0 + 2.0 + 3.0, 4.0]);
        }
    }

    #[test]
    fn all_reduce_mean() {
        let results = run_group(4, |m| {
            let mut buf = vec![(m.rank() * 2) as f32];
            m.all_reduce_mean(&mut buf);
            buf[0]
        });
        assert!(results.iter().all(|&x| x == 3.0));
    }

    #[test]
    fn all_reduce_max_takes_elementwise_max() {
        let results = run_group(3, |m| {
            let mut buf = vec![m.rank() as f32, -(m.rank() as f32)];
            m.all_reduce_max(&mut buf);
            buf
        });
        for r in &results {
            assert_eq!(r, &vec![2.0, 0.0]);
        }
    }

    #[test]
    fn all_gather_orders_by_rank() {
        let results = run_group(3, |m| m.all_gather(&[m.rank() as f32 * 10.0]));
        for r in &results {
            assert_eq!(r, &vec![0.0, 10.0, 20.0]);
        }
    }

    #[test]
    fn broadcast_from_root() {
        let results = run_group(3, |m| {
            let mut buf = if m.rank() == 1 {
                vec![7.0, 8.0]
            } else {
                vec![0.0, 0.0]
            };
            m.broadcast(&mut buf, 1);
            buf
        });
        for r in &results {
            assert_eq!(r, &vec![7.0, 8.0]);
        }
    }

    #[test]
    fn reduce_scatter_shards() {
        let results = run_group(2, |m| {
            // rank r contributes [r, r, r, r].
            let buf = vec![m.rank() as f32; 4];
            (m.rank(), m.reduce_scatter_sum(&buf))
        });
        for (rank, shard) in results {
            assert_eq!(shard, vec![1.0, 1.0], "rank {rank}");
        }
    }

    #[test]
    fn hierarchical_all_reduce_sums_like_flat() {
        let results = run_group(6, |m| {
            let mut buf = vec![m.rank() as f32, 1.0, -(m.rank() as f32)];
            expect_comm(m.try_hierarchical_all_reduce_sum(&mut buf, 2));
            buf
        });
        for r in &results {
            assert_eq!(r, &vec![15.0, 6.0, -15.0]);
        }
    }

    #[test]
    fn single_rank_collectives_are_identity() {
        let results = run_group(1, |m| {
            let mut buf = vec![3.0];
            m.all_reduce_sum(&mut buf);
            m.all_reduce_mean(&mut buf);
            let g = m.all_gather(&buf);
            (buf[0], g)
        });
        assert_eq!(results[0], (3.0, vec![3.0]));
    }

    #[test]
    fn two_overlapping_group_families_stay_independent() {
        // 4 threads arranged as two row-groups {0,1},{2,3} and two
        // column-groups {0,2},{1,3} (the tensor/data group pattern):
        // interleaved collectives on both families must not interfere.
        use std::sync::Arc;
        let rows = [Group::new(2), Group::new(2)];
        let cols = [Group::new(2), Group::new(2)];
        let results = thread::scope(|s| {
            let handles: Vec<_> = (0..4usize)
                .map(|id| {
                    let (r, c) = (id / 2, id % 2);
                    let rm = Arc::clone(&rows[r]).member(c);
                    let cm = Arc::clone(&cols[c]).member(r);
                    s.spawn(move || {
                        let mut out = Vec::new();
                        for round in 0..4 {
                            let mut buf = vec![(id + round) as f32];
                            rm.all_reduce_sum(&mut buf); // sums over the row
                            let mut buf2 = vec![buf[0]];
                            cm.all_reduce_sum(&mut buf2); // then over the column
                            out.push(buf2[0]);
                        }
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect::<Vec<_>>()
        });
        // Row sums: r0 = (0+r)+(1+r), r1 = (2+r)+(3+r); column sum = total.
        for res in &results {
            for (round, v) in res.iter().enumerate() {
                let want = (1 + 2 + 3 + 4 * round) as f32;
                assert_eq!(*v, want, "round {round}");
            }
        }
    }

    #[test]
    fn panicked_rank_poisons_group_and_survivors_error() {
        // Rank 2 panics before joining the collective; its GroupMember is
        // dropped during unwinding and poisons the group. Both survivors
        // must get a CommError well within the timeout, not deadlock.
        let group = Group::with_timeout(3, Duration::from_secs(5));
        let started = Instant::now();
        let mut handles = Vec::new();
        for r in 0..3usize {
            let m = Arc::clone(&group).member(r);
            // Raw threads (not thread::scope): rank 2's panic must not tear
            // down the test before the survivors observe the error.
            handles.push(thread::spawn(move || {
                if m.rank() == 2 {
                    panic!("simulated GPU failure");
                }
                let mut buf = vec![m.rank() as f32; 4];
                m.try_all_reduce_sum(&mut buf).map(|()| buf)
            }));
        }
        let results: Vec<_> = handles.into_iter().map(|h| h.join()).collect();
        assert!(results[2].is_err(), "rank 2 should have panicked");
        for r in 0..2 {
            let got = results[r].as_ref().expect("survivor must not panic");
            assert_eq!(got, &Err(CommError::Poisoned), "rank {r}");
        }
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "survivors must error before the timeout, got {:?}",
            started.elapsed()
        );
    }

    #[test]
    fn absent_rank_times_out_survivors_with_step_context() {
        // Rank 2 never calls the collective (and never panics): survivors
        // trip the timeout, which poisons the group. The first rank to
        // time out learns exactly which step and peer stalled.
        let group = Group::with_timeout(3, Duration::from_millis(100));
        let results = thread::scope(|s| {
            let handles: Vec<_> = (0..3usize)
                .map(|r| {
                    let m = Arc::clone(&group).member(r);
                    s.spawn(move || {
                        if m.rank() == 2 {
                            // Exits cleanly without ever joining: no panic,
                            // so only the timeout can save the peers.
                            return Ok(());
                        }
                        let mut buf = vec![1.0f32; 3];
                        m.try_all_reduce_sum(&mut buf)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect::<Vec<_>>()
        });
        for r in 0..2 {
            assert!(
                matches!(
                    results[r],
                    Err(CommError::Timeout(_)) | Err(CommError::Poisoned)
                ),
                "rank {r}: {:?}",
                results[r]
            );
        }
        // Whichever rank timed out (rather than being poisoned by the
        // other's timeout) must blame the collective and a concrete peer.
        let ctx = results
            .iter()
            .find_map(|r| match r {
                Err(CommError::Timeout(ctx)) => Some(ctx.clone()),
                _ => None,
            })
            .expect("at least one rank must report the timeout");
        assert_eq!(ctx.collective, "ring-all-reduce");
        assert_eq!(ctx.rounds, 4); // 2(r−1) rounds at r = 3
        assert!(ctx.round < ctx.rounds);
        assert!(ctx.peer.is_some());
        assert!(group.is_poisoned());
    }

    #[test]
    fn explicit_poison_fails_later_collectives() {
        let results = run_group(2, |m| {
            let mut buf = vec![1.0f32];
            m.try_all_reduce_sum(&mut buf).unwrap();
            if m.rank() == 0 {
                m.poison();
            }
            let _ = m.try_barrier();
            m.try_all_reduce_sum(&mut buf)
        });
        for r in &results {
            assert_eq!(*r, Err(CommError::Poisoned));
        }
    }

    #[test]
    fn infallible_wrappers_panic_with_typed_payload() {
        let group = Group::with_timeout(2, Duration::from_secs(5));
        let payload = thread::scope(|s| {
            let poisoner = Arc::clone(&group).member(0);
            let victim = Arc::clone(&group).member(1);
            poisoner.poison();
            s.spawn(move || {
                let mut buf = vec![1.0f32];
                victim.all_reduce_sum(&mut buf);
            })
            .join()
            .expect_err("collective on a poisoned group must panic")
        });
        let cp = payload
            .downcast_ref::<CommPanic>()
            .expect("panic payload must be a CommPanic, not a string");
        assert_eq!(cp.0, CommError::Poisoned);
        assert!(cp.to_string().contains("poisoned"));
    }

    #[test]
    fn comm_volume_counts_measured_ring_bytes() {
        let results = run_group(4, |m| {
            let mut buf = vec![1.0f32; 8];
            m.all_reduce_sum(&mut buf);
            let _ = m.all_gather(&buf[..2]);
            let _ = m.reduce_scatter_sum(&buf);
            m.broadcast(&mut buf, 0);
            m.barrier(); // pure barriers don't count as volume ops
            (m.rank(), m.comm_volume())
        });
        for (rank, v) in &results {
            // g=4, n=8 f32: all-reduce 2·(3/4)·8·4 = 48 B; all-gather of
            // 2-elem parts (4−1)·2·4 = 24 B; reduce-scatter (3/4)·8·4 = 24 B.
            // Broadcast egress is position-dependent: the ring tail
            // (rank 3 for root 0) forwards nothing, everyone else streams
            // the full 8·4 = 32 B.
            assert_eq!(v.all_reduce_bytes, 48.0, "rank {rank}");
            assert_eq!(v.all_gather_bytes, 24.0, "rank {rank}");
            assert_eq!(v.reduce_scatter_bytes, 24.0, "rank {rank}");
            let bcast = if *rank == 3 { 0.0 } else { 32.0 };
            assert_eq!(v.broadcast_bytes, bcast, "rank {rank}");
            assert_eq!(v.total_bytes(), 96.0 + bcast, "rank {rank}");
            assert_eq!(v.ops, 4);
        }
    }

    #[test]
    fn comm_volume_single_rank_is_free_and_take_resets() {
        let results = run_group(1, |m| {
            let mut buf = vec![1.0f32; 8];
            m.all_reduce_sum(&mut buf);
            let before = m.comm_volume();
            let taken = m.take_comm_volume();
            (before, taken, m.comm_volume())
        });
        let (before, taken, after) = results[0];
        assert_eq!(before, CommVolume::default());
        assert_eq!(taken, before);
        assert_eq!(after, CommVolume::default());
    }

    #[test]
    fn op_log_records_replayable_collectives() {
        let results = run_group(3, |m| {
            let mut buf = vec![1.0f32; 7];
            m.all_reduce_sum(&mut buf);
            let _ = m.all_gather(&buf[..2]);
            m.broadcast(&mut buf, 1);
            (m.comm_volume(), m.take_op_log(), m.rank())
        });
        for (vol, ops, rank) in &results {
            assert_eq!(
                ops,
                &vec![
                    CollectiveOp {
                        kind: CollectiveKind::AllReduce,
                        elems: 7
                    },
                    CollectiveOp {
                        kind: CollectiveKind::AllGather,
                        elems: 2
                    },
                    CollectiveOp {
                        kind: CollectiveKind::Broadcast { root: 1 },
                        elems: 7
                    },
                ]
            );
            // Replaying the logged programs yields exactly the bytes the
            // transport counted — the identity the sim comparison uses.
            let replayed: usize = ops.iter().map(|op| op.program(3).sent_elems(*rank)).sum();
            assert_eq!(replayed as f64 * BYTES_F32, vol.total_bytes());
        }
        // The log drains on take.
        let (_, _, _) = &results[0];
    }

    #[test]
    fn comm_error_displays() {
        let ctx = StallContext::new("ring-all-reduce", 2, 4, Some(1));
        let msg = CommError::Timeout(ctx).to_string();
        assert!(msg.contains("timed out"), "{msg}");
        assert!(msg.contains("ring-all-reduce"), "{msg}");
        assert!(msg.contains("step 3/4"), "{msg}");
        assert!(msg.contains("rank 1"), "{msg}");
        assert!(!msg.contains("pid"), "{msg}");
        assert!(CommError::Poisoned.to_string().contains("poisoned"));
    }

    #[test]
    fn comm_error_displays_process_identity() {
        let mut ctx = StallContext::new("ring-all-reduce", 0, 4, Some(2));
        ctx.peer_pid = Some(4242);
        ctx.peer_addr = Some("uds:/tmp/rv/r2.sock".to_string());
        let msg = CommError::Timeout(ctx).to_string();
        assert!(msg.contains("rank 2"), "{msg}");
        assert!(msg.contains("pid 4242"), "{msg}");
        assert!(msg.contains("uds:/tmp/rv/r2.sock"), "{msg}");
    }

    #[test]
    fn repeated_collectives_do_not_cross_talk() {
        let results = run_group(3, |m| {
            let mut out = Vec::new();
            for round in 0..5 {
                let mut buf = vec![(m.rank() + round) as f32];
                m.all_reduce_sum(&mut buf);
                out.push(buf[0]);
            }
            out
        });
        for r in &results {
            assert_eq!(r, &vec![3.0, 6.0, 9.0, 12.0, 15.0]);
        }
    }

    fn run_group_cfg<T: Send>(
        size: usize,
        cfg: TransportConfig,
        f: impl Fn(GroupMember) -> T + Sync,
    ) -> Vec<T> {
        let group = Group::with_config(size, Duration::from_secs(10), cfg);
        thread::scope(|s| {
            let handles: Vec<_> = (0..size)
                .map(|r| {
                    let m = group.member(r);
                    s.spawn(|| f(m))
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        })
    }

    fn lossy_cfg(seed: u64, drop_prob: f64) -> TransportConfig {
        TransportConfig {
            wire: WireKind::Mailbox,
            retry: Some(RetryPolicy {
                base_backoff: Duration::from_micros(200),
                ..RetryPolicy::default()
            }),
            faults: Some(FaultProfile {
                seed,
                faults: TransientFaults {
                    drop_prob,
                    ..TransientFaults::default()
                },
            }),
        }
    }

    #[test]
    fn retry_layer_alone_changes_nothing() {
        let cfg = TransportConfig {
            wire: WireKind::Mailbox,
            retry: Some(RetryPolicy::default()),
            faults: None,
        };
        let results = run_group_cfg(4, cfg, |m| {
            let mut buf = vec![m.rank() as f32, 1.0];
            m.all_reduce_sum(&mut buf);
            (buf, m.retry_stats(), m.fault_tally())
        });
        for (buf, stats, tally) in &results {
            assert_eq!(buf, &vec![6.0, 4.0]);
            assert_eq!(stats.retransmits, 0);
            assert_eq!(tally.total(), 0);
        }
    }

    #[test]
    fn dropped_chunks_in_ring_all_reduce_recover_without_timeout() {
        // The acceptance criterion: a transient message drop during a ring
        // all-reduce is absorbed by the retry layer — visible in the retry
        // counters — and never surfaces as CommError::Timeout.
        let results = run_group_cfg(4, lossy_cfg(0x5eed, 0.3), |m| {
            let mut buf: Vec<f32> = (0..23).map(|i| (m.rank() * 23 + i) as f32).collect();
            let r = m.try_all_reduce_sum(&mut buf);
            (r, buf, m.retry_stats(), m.fault_tally())
        });
        let mut dropped = 0;
        let mut recovered = 0;
        for (r, buf, stats, tally) in &results {
            assert_eq!(*r, Ok(()), "drops must be absorbed, not time out");
            assert_eq!(buf, &results[0].1, "ranks must still agree bit-identically");
            dropped += tally.dropped;
            recovered += stats.retransmits;
        }
        assert!(dropped > 0, "a 30% drop rate must hit at least one send");
        assert_eq!(recovered, dropped, "every drop recovered exactly once");
    }

    #[test]
    fn lossy_wire_matches_clean_wire_bit_for_bit() {
        // Mixed drop/duplicate/delay across several collectives: the final
        // values must equal the fault-free run exactly.
        let clean = run_group(3, |m| {
            let mut buf = vec![(m.rank() as f32) * 0.25 - 1.0; 11];
            m.all_reduce_sum(&mut buf);
            let gathered = m.all_gather(&buf[..3]);
            m.broadcast(&mut buf, 2);
            (buf, gathered)
        });
        let cfg = TransportConfig {
            wire: WireKind::Mailbox,
            retry: Some(RetryPolicy {
                base_backoff: Duration::from_micros(200),
                ..RetryPolicy::default()
            }),
            faults: Some(FaultProfile {
                seed: 0xc4a05,
                faults: TransientFaults {
                    drop_prob: 0.2,
                    duplicate_prob: 0.2,
                    delay_prob: 0.1,
                    delay: Duration::from_micros(300),
                    ..TransientFaults::default()
                },
            }),
        };
        let lossy = run_group_cfg(3, cfg, |m| {
            let mut buf = vec![(m.rank() as f32) * 0.25 - 1.0; 11];
            m.all_reduce_sum(&mut buf);
            let gathered = m.all_gather(&buf[..3]);
            m.broadcast(&mut buf, 2);
            (buf, gathered)
        });
        assert_eq!(clean, lossy);
    }

    #[test]
    fn exhausted_retransmit_budget_still_times_out() {
        // A wire that drops everything with a budget of one recovery: the
        // retry layer gives up and the hard timeout (with step context)
        // must still fire, poisoning the group — dead peers stay fatal.
        let cfg = TransportConfig {
            wire: WireKind::Mailbox,
            retry: Some(RetryPolicy {
                base_backoff: Duration::from_micros(100),
                max_backoff: Duration::from_millis(2),
                retransmit_budget: 1,
            }),
            faults: Some(FaultProfile {
                seed: 7,
                faults: TransientFaults {
                    drop_prob: 1.0,
                    ..TransientFaults::default()
                },
            }),
        };
        let group = Group::with_config(2, Duration::from_millis(300), cfg);
        let results: Vec<_> = thread::scope(|s| {
            let handles: Vec<_> = (0..2)
                .map(|r| {
                    let m = group.member(r);
                    s.spawn(move || {
                        let mut buf = vec![1.0f32; 8];
                        m.try_all_reduce_sum(&mut buf)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert!(
            results
                .iter()
                .any(|r| matches!(r, Err(CommError::Timeout(_)))),
            "budget exhaustion must surface the hard timeout: {results:?}"
        );
        assert!(group.is_poisoned());
    }
}
