//! Shared-memory collectives over thread groups.
//!
//! A [`Group`] is the moral equivalent of an NCCL communicator: a fixed set
//! of ranks that issue the *same sequence* of collective calls (SPMD). Each
//! collective uses a publish-barrier-combine-barrier protocol on a shared
//! board. Reductions always iterate contributions in rank order, so every
//! member computes a bit-identical result — the property the equivalence
//! tests lean on.

use std::sync::{Arc, Barrier, Mutex};

/// Shared state of one communicator group.
pub struct Group {
    size: usize,
    board: Vec<Mutex<Vec<f32>>>,
    barrier: Barrier,
}

impl Group {
    /// Create a group of `size` ranks; hand one [`GroupMember`] per rank to
    /// its thread via [`Group::member`].
    pub fn new(size: usize) -> Arc<Group> {
        assert!(size > 0);
        Arc::new(Group {
            size,
            board: (0..size).map(|_| Mutex::new(Vec::new())).collect(),
            barrier: Barrier::new(size),
        })
    }

    /// The member handle for `rank`.
    pub fn member(self: &Arc<Group>, rank: usize) -> GroupMember {
        assert!(rank < self.size);
        GroupMember {
            group: Arc::clone(self),
            rank,
        }
    }

    /// Ranks in the group.
    pub fn size(&self) -> usize {
        self.size
    }
}

/// One rank's handle to a [`Group`]. Every collective must be called by all
/// ranks of the group, in the same order.
pub struct GroupMember {
    group: Arc<Group>,
    rank: usize,
}

impl GroupMember {
    /// This member's rank within the group.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Group size.
    pub fn size(&self) -> usize {
        self.group.size
    }

    /// In-place sum all-reduce. Deterministic: contributions are summed in
    /// rank order on every member.
    pub fn all_reduce_sum(&self, buf: &mut [f32]) {
        if self.group.size == 1 {
            return;
        }
        *self.group.board[self.rank].lock().unwrap() = buf.to_vec();
        self.group.barrier.wait();
        for (i, b) in buf.iter_mut().enumerate() {
            let mut acc = 0.0f32;
            for r in 0..self.group.size {
                acc += self.group.board[r].lock().unwrap()[i];
            }
            *b = acc;
        }
        self.group.barrier.wait();
    }

    /// In-place element-wise max all-reduce.
    pub fn all_reduce_max(&self, buf: &mut [f32]) {
        if self.group.size == 1 {
            return;
        }
        *self.group.board[self.rank].lock().unwrap() = buf.to_vec();
        self.group.barrier.wait();
        for (i, b) in buf.iter_mut().enumerate() {
            let mut acc = f32::NEG_INFINITY;
            for r in 0..self.group.size {
                acc = acc.max(self.group.board[r].lock().unwrap()[i]);
            }
            *b = acc;
        }
        self.group.barrier.wait();
    }

    /// In-place mean all-reduce (deterministic, rank-ordered).
    pub fn all_reduce_mean(&self, buf: &mut [f32]) {
        self.all_reduce_sum(buf);
        let k = 1.0 / self.group.size as f32;
        for b in buf {
            *b *= k;
        }
    }

    /// All-gather: every rank contributes `part`; returns the rank-ordered
    /// concatenation.
    pub fn all_gather(&self, part: &[f32]) -> Vec<f32> {
        if self.group.size == 1 {
            return part.to_vec();
        }
        *self.group.board[self.rank].lock().unwrap() = part.to_vec();
        self.group.barrier.wait();
        let mut out = Vec::with_capacity(part.len() * self.group.size);
        for r in 0..self.group.size {
            out.extend_from_slice(&self.group.board[r].lock().unwrap());
        }
        self.group.barrier.wait();
        out
    }

    /// Broadcast `buf` from `root` to every rank, in place.
    pub fn broadcast(&self, buf: &mut [f32], root: usize) {
        if self.group.size == 1 {
            return;
        }
        if self.rank == root {
            *self.group.board[root].lock().unwrap() = buf.to_vec();
        }
        self.group.barrier.wait();
        if self.rank != root {
            buf.copy_from_slice(&self.group.board[root].lock().unwrap());
        }
        self.group.barrier.wait();
    }

    /// Reduce-scatter: sum contributions, return this rank's `1/size` shard
    /// (buffer length must divide evenly).
    pub fn reduce_scatter_sum(&self, buf: &[f32]) -> Vec<f32> {
        assert!(buf.len().is_multiple_of(self.group.size), "uneven reduce-scatter");
        let chunk = buf.len() / self.group.size;
        if self.group.size == 1 {
            return buf.to_vec();
        }
        *self.group.board[self.rank].lock().unwrap() = buf.to_vec();
        self.group.barrier.wait();
        let lo = self.rank * chunk;
        let mut out = vec![0.0f32; chunk];
        for r in 0..self.group.size {
            let other = self.group.board[r].lock().unwrap();
            for (o, v) in out.iter_mut().zip(&other[lo..lo + chunk]) {
                *o += v;
            }
        }
        self.group.barrier.wait();
        out
    }

    /// Pure synchronization barrier.
    pub fn barrier(&self) {
        self.group.barrier.wait();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn run_group<T: Send>(size: usize, f: impl Fn(GroupMember) -> T + Sync) -> Vec<T> {
        let group = Group::new(size);
        thread::scope(|s| {
            let handles: Vec<_> = (0..size)
                .map(|r| {
                    let m = group.member(r);
                    s.spawn(|| f(m))
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        })
    }

    #[test]
    fn all_reduce_sums_and_is_identical() {
        let results = run_group(4, |m| {
            let mut buf = vec![m.rank() as f32, 1.0];
            m.all_reduce_sum(&mut buf);
            buf
        });
        for r in &results {
            assert_eq!(r, &vec![0.0 + 1.0 + 2.0 + 3.0, 4.0]);
        }
    }

    #[test]
    fn all_reduce_mean() {
        let results = run_group(4, |m| {
            let mut buf = vec![(m.rank() * 2) as f32];
            m.all_reduce_mean(&mut buf);
            buf[0]
        });
        assert!(results.iter().all(|&x| x == 3.0));
    }

    #[test]
    fn all_reduce_max_takes_elementwise_max() {
        let results = run_group(3, |m| {
            let mut buf = vec![m.rank() as f32, -(m.rank() as f32)];
            m.all_reduce_max(&mut buf);
            buf
        });
        for r in &results {
            assert_eq!(r, &vec![2.0, 0.0]);
        }
    }

    #[test]
    fn all_gather_orders_by_rank() {
        let results = run_group(3, |m| m.all_gather(&[m.rank() as f32 * 10.0]));
        for r in &results {
            assert_eq!(r, &vec![0.0, 10.0, 20.0]);
        }
    }

    #[test]
    fn broadcast_from_root() {
        let results = run_group(3, |m| {
            let mut buf = if m.rank() == 1 { vec![7.0, 8.0] } else { vec![0.0, 0.0] };
            m.broadcast(&mut buf, 1);
            buf
        });
        for r in &results {
            assert_eq!(r, &vec![7.0, 8.0]);
        }
    }

    #[test]
    fn reduce_scatter_shards() {
        let results = run_group(2, |m| {
            // rank r contributes [r, r, r, r].
            let buf = vec![m.rank() as f32; 4];
            (m.rank(), m.reduce_scatter_sum(&buf))
        });
        for (rank, shard) in results {
            assert_eq!(shard, vec![1.0, 1.0], "rank {rank}");
        }
    }

    #[test]
    fn single_rank_collectives_are_identity() {
        let results = run_group(1, |m| {
            let mut buf = vec![3.0];
            m.all_reduce_sum(&mut buf);
            m.all_reduce_mean(&mut buf);
            let g = m.all_gather(&buf);
            (buf[0], g)
        });
        assert_eq!(results[0], (3.0, vec![3.0]));
    }

    #[test]
    fn two_overlapping_group_families_stay_independent() {
        // 4 threads arranged as two row-groups {0,1},{2,3} and two
        // column-groups {0,2},{1,3} (the tensor/data group pattern):
        // interleaved collectives on both families must not interfere.
        use std::sync::Arc;
        let rows = [Group::new(2), Group::new(2)];
        let cols = [Group::new(2), Group::new(2)];
        let results = thread::scope(|s| {
            let handles: Vec<_> = (0..4usize)
                .map(|id| {
                    let (r, c) = (id / 2, id % 2);
                    let rm = Arc::clone(&rows[r]).member(c);
                    let cm = Arc::clone(&cols[c]).member(r);
                    s.spawn(move || {
                        let mut out = Vec::new();
                        for round in 0..4 {
                            let mut buf = vec![(id + round) as f32];
                            rm.all_reduce_sum(&mut buf); // sums over the row
                            let mut buf2 = vec![buf[0]];
                            cm.all_reduce_sum(&mut buf2); // then over the column
                            out.push(buf2[0]);
                        }
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect::<Vec<_>>()
        });
        // Row sums: r0 = (0+r)+(1+r), r1 = (2+r)+(3+r); column sum = total.
        for res in &results {
            for (round, v) in res.iter().enumerate() {
                let want = (1 + 2 + 3 + 4 * round) as f32;
                assert_eq!(*v, want, "round {round}");
            }
        }
    }

    #[test]
    fn repeated_collectives_do_not_cross_talk() {
        let results = run_group(3, |m| {
            let mut out = Vec::new();
            for round in 0..5 {
                let mut buf = vec![(m.rank() + round) as f32];
                m.all_reduce_sum(&mut buf);
                out.push(buf[0]);
            }
            out
        });
        for r in &results {
            assert_eq!(r, &vec![3.0, 6.0, 9.0, 12.0, 15.0]);
        }
    }
}
