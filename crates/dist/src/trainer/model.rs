//! The model shard one thread owns — embedding / transformer chunks / LM
//! head in their replicated or vocab-parallel layouts — plus the forward
//! caches the schedule stashes between a microbatch's forward and
//! backward passes.

use megatron_tensor::gpt::GptModel;
use megatron_tensor::layers::{Embedding, LayerNorm, LayerNormCache, Linear};
use megatron_tensor::Matrix;

use crate::block::{ParallelBlock, ParallelBlockCache};
use crate::comm::GroupMember;
use crate::vocab::{VocabHeadCache, VocabParallelEmbedding, VocabParallelHead};

use super::spec::PtdpSpec;

/// Embedding owned by a first-stage thread: replicated or vocab-sharded.
pub(crate) enum EmbedShard {
    Replicated(Embedding),
    VocabParallel(VocabParallelEmbedding),
}

impl EmbedShard {
    pub(crate) fn forward(&self, toks: &[usize], seq: usize, tg: &GroupMember) -> Matrix {
        match self {
            EmbedShard::Replicated(e) => e.forward(toks, seq),
            EmbedShard::VocabParallel(e) => e.forward(toks, seq, tg),
        }
    }

    pub(crate) fn backward(&mut self, toks: &[usize], seq: usize, dx: &Matrix) {
        match self {
            EmbedShard::Replicated(e) => e.backward(toks, seq, dx),
            EmbedShard::VocabParallel(e) => e.backward(toks, seq, dx),
        }
    }

    fn visit(&mut self, f: &mut impl FnMut(&mut [f32], &mut [f32])) {
        match self {
            EmbedShard::Replicated(e) => e.visit(f),
            EmbedShard::VocabParallel(e) => e.visit(f),
        }
    }
}

impl EmbedShard {
    /// Merge tensor-group shards back into a serial [`Embedding`].
    pub(crate) fn assemble(shards: &[&EmbedShard]) -> Embedding {
        match shards[0] {
            EmbedShard::Replicated(e) => e.clone(),
            EmbedShard::VocabParallel(_) => {
                let parts: Vec<Matrix> = shards
                    .iter()
                    .map(|s| match s {
                        EmbedShard::VocabParallel(e) => e.tokens.clone(),
                        EmbedShard::Replicated(_) => unreachable!("mixed embed layouts"),
                    })
                    .collect();
                let tokens = Matrix::concat_rows(&parts);
                let positions = match shards[0] {
                    EmbedShard::VocabParallel(e) => e.positions.clone(),
                    EmbedShard::Replicated(_) => unreachable!(),
                };
                let (vr, vc) = (tokens.rows(), tokens.cols());
                let (pr, pc) = (positions.rows(), positions.cols());
                Embedding {
                    tokens,
                    positions,
                    gtokens: Matrix::zeros(vr, vc),
                    gpositions: Matrix::zeros(pr, pc),
                }
            }
        }
    }
}

/// LM head owned by a last-stage thread: replicated or vocab-sharded.
pub(crate) enum HeadShard {
    Replicated(LayerNorm, Linear),
    VocabParallel(LayerNorm, VocabParallelHead),
}

impl HeadShard {
    fn visit(&mut self, f: &mut impl FnMut(&mut [f32], &mut [f32])) {
        match self {
            HeadShard::Replicated(ln, lm) => {
                ln.visit(f);
                lm.visit(f);
            }
            HeadShard::VocabParallel(ln, hd) => {
                ln.visit(f);
                hd.visit(f);
            }
        }
    }
}

impl HeadShard {
    /// Merge tensor-group shards back into the serial final LayerNorm + LM
    /// head pair.
    pub(crate) fn assemble(shards: &[&HeadShard]) -> (LayerNorm, Linear) {
        match shards[0] {
            HeadShard::Replicated(ln, lm) => (ln.clone(), lm.clone()),
            HeadShard::VocabParallel(ln, _) => {
                let parts: Vec<Matrix> = shards
                    .iter()
                    .map(|s| match s {
                        HeadShard::VocabParallel(_, hd) => hd.w.w.clone(),
                        HeadShard::Replicated(..) => unreachable!("mixed head layouts"),
                    })
                    .collect();
                let w = Matrix::concat_cols(&parts);
                let (r, c) = (w.rows(), w.cols());
                (
                    ln.clone(),
                    Linear {
                        w,
                        b: None,
                        gw: Matrix::zeros(r, c),
                        gb: vec![0.0; c],
                    },
                )
            }
        }
    }
}

/// The model shard owned by one thread.
pub(crate) struct ThreadModel {
    /// Blocks per owned chunk (index = chunk id).
    pub(crate) chunks: Vec<Vec<ParallelBlock>>,
    pub(crate) embed: Option<EmbedShard>,
    pub(crate) head: Option<HeadShard>,
}

impl ThreadModel {
    pub(super) fn visit(&mut self, f: &mut impl FnMut(&mut [f32], &mut [f32])) {
        if let Some(e) = &mut self.embed {
            e.visit(f);
        }
        for chunk in &mut self.chunks {
            for b in chunk {
                b.visit(f);
            }
        }
        if let Some(h) = &mut self.head {
            h.visit(f);
        }
    }

    /// Visit parameter slices only (reassembly helper).
    pub(crate) fn visit_params(&mut self, f: &mut impl FnMut(&mut [f32])) {
        self.visit(&mut |p, _| f(p));
    }

    /// Visit gradient slices only (2BW helper).
    pub(crate) fn visit_grads(&mut self, f: &mut impl FnMut(&mut [f32])) {
        self.visit(&mut |_, g| f(g));
    }

    pub(super) fn param_grad_pairs(&mut self) -> Vec<(&mut [f32], &mut [f32])> {
        let mut raw: Vec<(*mut [f32], *mut [f32])> = Vec::new();
        self.visit(&mut |p, g| raw.push((p as *mut [f32], g as *mut [f32])));
        // SAFETY: visit yields disjoint field borrows.
        raw.into_iter()
            .map(|(p, g)| unsafe { (&mut *p, &mut *g) })
            .collect()
    }

    pub(crate) fn flat_params(&mut self) -> Vec<f32> {
        let mut out = Vec::new();
        self.visit(&mut |p, _| out.extend_from_slice(p));
        out
    }

    /// Overwrite every parameter from a flat snapshot (inverse of
    /// [`ThreadModel::flat_params`]).
    pub(crate) fn set_flat_params(&mut self, vals: &[f32]) {
        let mut off = 0;
        self.visit(&mut |p, _| {
            p.copy_from_slice(&vals[off..off + p.len()]);
            off += p.len();
        });
        assert_eq!(off, vals.len(), "snapshot parameter count mismatch");
    }
}

/// Per-microbatch forward cache for one chunk.
pub(super) struct ChunkCache {
    /// Full per-block caches (empty in recompute mode).
    pub(super) block_caches: Vec<ParallelBlockCache>,
    /// Recompute mode: the chunk's input activation, stashed instead.
    pub(super) input: Option<Matrix>,
    /// Last stage only: loss path (absent in recompute mode — rebuilt).
    pub(super) head: Option<HeadCache>,
    /// First stage only: token slice for embedding backward.
    pub(super) tokens: Option<Vec<usize>>,
}

impl ChunkCache {
    /// `f32` values held (activation-memory instrumentation, §3.5).
    pub(super) fn float_count(&self) -> usize {
        self.block_caches
            .iter()
            .map(|c| c.float_count())
            .sum::<usize>()
            + self.input.as_ref().map_or(0, Matrix::len)
            + self
                .head
                .as_ref()
                .map_or(0, |h| h.hidden_final.len() + h.dlogits.len())
    }
}

pub(super) struct HeadCache {
    pub(super) ln: LayerNormCache,
    pub(super) hidden_final: Matrix,
    /// Replicated path: full dlogits; vocab-parallel path: the local shard.
    pub(super) dlogits: DLogits,
}

pub(super) enum DLogits {
    Full(Matrix),
    Shard(VocabHeadCache),
}

impl DLogits {
    pub(super) fn len(&self) -> usize {
        match self {
            DLogits::Full(m) => m.len(),
            DLogits::Shard(c) => c.dlogits.len(),
        }
    }
}

/// Build the shard thread `(pi, ti)` owns from the master weights.
pub(crate) fn build_thread_model(
    master: &GptModel,
    spec: &PtdpSpec,
    pi: usize,
    ti: usize,
) -> ThreadModel {
    let cfg = master.cfg;
    let (p, t, v) = (spec.pipeline, spec.tensor, spec.chunks);
    let stages = p * v;
    let layers_per_stage = cfg.layers / stages;
    let vocab_parallel = spec.vocab_parallel && t > 1;
    ThreadModel {
        chunks: (0..v)
            .map(|c| {
                let stage = c * p + pi;
                let lo = stage * layers_per_stage;
                (lo..lo + layers_per_stage)
                    .map(|l| ParallelBlock::from_serial(&master.blocks[l], cfg.heads, t, ti))
                    .collect()
            })
            .collect(),
        embed: (pi == 0).then(|| {
            if vocab_parallel {
                EmbedShard::VocabParallel(VocabParallelEmbedding::from_serial(&master.embed, t, ti))
            } else {
                EmbedShard::Replicated(master.embed.clone())
            }
        }),
        // The last global stage (stages−1) lives on device (stages−1) % p,
        // which is p−1 (and chunk v−1).
        head: (pi == (stages - 1) % p).then(|| {
            if vocab_parallel {
                HeadShard::VocabParallel(
                    master.final_ln.clone(),
                    VocabParallelHead::from_serial(&master.lm_head, t, ti),
                )
            } else {
                HeadShard::Replicated(master.final_ln.clone(), master.lm_head.clone())
            }
        }),
    }
}
