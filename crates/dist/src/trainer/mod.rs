//! The PTD-P trainer: real tensor + pipeline + data parallel training over
//! `p·t·d` threads, with strict optimizer semantics (§2.2's pipeline flush
//! before every optimizer step).
//!
//! Construction mirrors the paper exactly:
//! - the model's layers are split into `p·v` stages assigned round-robin
//!   (stage `c·p + device`, §2.2.2);
//! - each stage's blocks are tensor-parallel shards across `t` threads
//!   (§2.3);
//! - the batch is sharded over `d` replicas and each replica's share is cut
//!   into `m = B/(d·b)` microbatches driven by a
//!   [`megatron_schedule::ScheduleKind`] program;
//! - after the flush, gradients are scaled by `1/m`, mean-all-reduced
//!   across the data group, and stepped with per-thread Adam (identical
//!   state on every replica — verified in tests).
//!
//! The first stage owns the (replicated-across-`t`) embedding; the last
//! stage owns the final LayerNorm + LM head. That matches Megatron's
//! placement, minus vocab-parallel embeddings (a documented simplification
//! — see DESIGN.md).
//!
//! The module is split by concern:
//! - [`spec`](self) — [`PtdpSpec`], the parallelization plan;
//! - [`logs`](self) — run knobs and outputs ([`RunControl`], [`TrainLog`],
//!   [`TrainOutcome`], checkpoints, the comm tapes);
//! - [`model`](self) — the per-thread model shard and forward caches;
//! - [`worker`](self) — the per-thread training loop;
//! - this file — the orchestrator that wires groups, channels, and threads
//!   together.

mod logs;
mod model;
mod spec;
mod worker;

#[cfg(test)]
mod tests;

pub use logs::{
    KillSwitch, RankCommOps, RankCommVolume, RunControl, StepSample, ThreadState, TrainError,
    TrainLog, TrainOutcome, TrainSnapshot,
};
pub use spec::{PtdpSpec, ThreadKey};

pub(crate) use model::{build_thread_model, EmbedShard, HeadShard, ThreadModel};

use std::collections::HashMap;
use std::sync::mpsc::channel as unbounded;
use std::sync::{Arc, Mutex};

use megatron_tensor::gpt::GptModel;

use crate::comm::Group;

pub(crate) use logs::SharedMap;
pub(crate) use worker::{classify_panic, run_thread, Endpoints, ThreadArgs};

/// Real PTD-P training over threads.
pub struct PtdpTrainer {
    master: GptModel,
    spec: PtdpSpec,
}

impl PtdpTrainer {
    /// Validate the spec against the master model and build the trainer.
    ///
    /// # Panics
    /// On any §3.1-style divisibility violation.
    pub fn new(master: GptModel, spec: PtdpSpec) -> Self {
        let cfg = master.cfg;
        assert!(
            cfg.heads.is_multiple_of(spec.tensor),
            "t must divide attention heads"
        );
        assert!(
            cfg.layers.is_multiple_of(spec.pipeline * spec.chunks),
            "layers must divide into p·v stages"
        );
        assert_eq!(
            spec.schedule.chunks(),
            spec.chunks,
            "schedule/spec chunk mismatch"
        );
        PtdpTrainer { master, spec }
    }

    /// Train for one iteration per element of `data`; each element is the
    /// full global batch (`tokens`, `targets`), both `B·seq` long.
    ///
    /// # Panics
    /// If any worker fails (use [`PtdpTrainer::train_with`] for the
    /// fallible path).
    pub fn train(&self, data: &[(Vec<usize>, Vec<usize>)]) -> TrainLog {
        let out = self.train_with(data, RunControl::default());
        if let Some(e) = out.error {
            panic!("training failed: {e}");
        }
        out.log
    }

    /// Like [`PtdpTrainer::train`] with failure handling: periodic
    /// in-memory checkpoints, restore-from-snapshot, deliberate rank
    /// kills, and a collective timeout. Never panics on worker failure —
    /// the first error is reported in the outcome instead.
    pub fn train_with(&self, data: &[(Vec<usize>, Vec<usize>)], ctl: RunControl) -> TrainOutcome {
        let spec = self.spec;
        let cfg = self.master.cfg;
        let (p, t, d, v) = (spec.pipeline, spec.tensor, spec.data, spec.chunks);
        let stages = p * v;
        let seq = cfg.seq;

        assert!(!data.is_empty(), "need at least one iteration of data");
        let batch_total = data[0].0.len() / seq;
        for (tok, tgt) in data {
            assert_eq!(tok.len(), batch_total * seq, "uneven iteration batches");
            assert_eq!(tgt.len(), batch_total * seq);
        }
        assert!(
            batch_total.is_multiple_of(d * spec.microbatch),
            "B={batch_total} must divide by d·b = {}",
            d * spec.microbatch
        );
        let per_replica = batch_total / d;
        let m = per_replica / spec.microbatch;
        let schedule = spec.schedule.build(p, m);
        schedule.validate().expect("generated schedule is valid");

        // --- Process groups ---
        let timeout = ctl.comm_timeout.unwrap_or(spec.comm_timeout);
        // Each group gets its own fault stream, derived deterministically
        // from the base chaos seed and the group's coordinates (family
        // word 1 = tensor, 2 = data), so two runs with the same seed see
        // identical faults while no two groups share a stream.
        let transport = ctl.transport;
        let group_cfg = move |family: u64, a: usize, b: usize| {
            let mut cfg = transport;
            if let Some(fp) = &mut cfg.faults {
                fp.seed = megatron_collective::mix_seed(
                    fp.seed,
                    family << 32 | (a as u64) << 16 | b as u64,
                );
            }
            cfg
        };
        let tensor_groups: HashMap<(usize, usize), Arc<Group>> = (0..p)
            .flat_map(|pi| {
                (0..d).map(move |di| {
                    (
                        (pi, di),
                        Group::with_config(t, timeout, group_cfg(1, pi, di)),
                    )
                })
            })
            .collect();
        let data_groups: HashMap<(usize, usize), Arc<Group>> = (0..p)
            .flat_map(|pi| {
                (0..t).map(move |ti| {
                    (
                        (pi, ti),
                        Group::with_config(d, timeout, group_cfg(2, pi, ti)),
                    )
                })
            })
            .collect();

        // --- Channels (per (di, ti) lane, per stage boundary) ---
        let mut endpoints: HashMap<(usize, usize, usize), Endpoints> = (0..p)
            .flat_map(|pi| {
                (0..d)
                    .flat_map(move |di| (0..t).map(move |ti| ((pi, di, ti), Endpoints::default())))
            })
            .collect();
        for di in 0..d {
            for ti in 0..t {
                for s in 0..stages.saturating_sub(1) {
                    let from_dev = s % p;
                    let to_dev = (s + 1) % p;
                    let (ftx, frx) = unbounded();
                    let (btx, brx) = unbounded();
                    endpoints
                        .get_mut(&(from_dev, di, ti))
                        .unwrap()
                        .fwd_out
                        .insert(s, ftx);
                    endpoints
                        .get_mut(&(to_dev, di, ti))
                        .unwrap()
                        .fwd_in
                        .insert(s + 1, frx);
                    endpoints
                        .get_mut(&(to_dev, di, ti))
                        .unwrap()
                        .bwd_out
                        .insert(s + 1, btx);
                    endpoints
                        .get_mut(&(from_dev, di, ti))
                        .unwrap()
                        .bwd_in
                        .insert(s, brx);
                }
            }
        }

        let losses = Arc::new(Mutex::new(vec![0.0f32; data.len()]));
        let final_params: SharedMap<Vec<f32>> = Arc::new(Mutex::new(HashMap::new()));
        let peak_stash: SharedMap<usize> = Arc::new(Mutex::new(HashMap::new()));
        let step_times: SharedMap<Vec<StepSample>> = Arc::new(Mutex::new(HashMap::new()));
        let comm_volumes: SharedMap<RankCommVolume> = Arc::new(Mutex::new(HashMap::new()));
        let comm_ops: SharedMap<RankCommOps> = Arc::new(Mutex::new(HashMap::new()));
        // Checkpoints accumulate per iteration; threads may drift by up to
        // a pipeline flush, so only an iteration every thread finished
        // counts as a restorable snapshot.
        let ckpts: Mutex<HashMap<usize, HashMap<ThreadKey, ThreadState>>> =
            Mutex::new(HashMap::new());
        let ctl = &ctl;

        let results: Vec<(ThreadKey, Result<(), TrainError>)> = std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(p * d * t);
            for pi in 0..p {
                for di in 0..d {
                    for ti in 0..t {
                        let ep = endpoints.remove(&(pi, di, ti)).unwrap();
                        let tg = tensor_groups[&(pi, di)].member(ti);
                        let dg = data_groups[&(pi, ti)].member(di);
                        let losses = Arc::clone(&losses);
                        let final_params = Arc::clone(&final_params);
                        let peak_stash = Arc::clone(&peak_stash);
                        let step_times = Arc::clone(&step_times);
                        let comm_volumes = Arc::clone(&comm_volumes);
                        let comm_ops = Arc::clone(&comm_ops);
                        let master = &self.master;
                        let schedule = &schedule;
                        let ckpts = &ckpts;
                        handles.push((
                            (pi, di, ti),
                            scope.spawn(move || {
                                run_thread(ThreadArgs {
                                    pi,
                                    di,
                                    ti,
                                    spec,
                                    master,
                                    schedule,
                                    data,
                                    ep,
                                    tg,
                                    dg,
                                    losses,
                                    final_params,
                                    peak_stash,
                                    step_times,
                                    comm_volumes,
                                    comm_ops,
                                    ctl,
                                    ckpts,
                                })
                            }),
                        ));
                    }
                }
            }
            handles
                .into_iter()
                .map(|(key, h)| (key, h.join().unwrap_or_else(|p| Err(classify_panic(&p)))))
                .collect()
        });

        // Prefer the deliberate kill as the headline error (the comm errors
        // on the survivors are its consequences).
        let error = results
            .iter()
            .find_map(|(_, r)| match r {
                Err(e @ TrainError::Killed(_)) => Some(e.clone()),
                _ => None,
            })
            .or_else(|| results.iter().find_map(|(_, r)| r.as_ref().err().cloned()));

        // Every worker has exited (joined above), so the log mutexes have
        // no other holders — but a worker that panicked mid-update leaves
        // them poisoned. The partial logs are still the best record of the
        // run, and `error` already carries the classified failure, so take
        // the data instead of propagating the panic.
        let world = p * d * t;
        let snapshot = ckpts
            .into_inner()
            .unwrap_or_else(|e| e.into_inner())
            .into_iter()
            .filter(|(_, threads)| threads.len() == world)
            .max_by_key(|(next_iter, _)| *next_iter)
            .map(|(next_iter, threads)| TrainSnapshot { next_iter, threads });

        let comm_volumes = Arc::try_unwrap(comm_volumes)
            .unwrap()
            .into_inner()
            .unwrap_or_else(|e| e.into_inner());
        if let Some(sink) = &ctl.telemetry {
            let mut total = 0.0f64;
            for ((cpi, cdi, cti), vol) in &comm_volumes {
                let bytes = vol.total_bytes();
                sink.metrics
                    .counter(&format!("comm_bytes.rank.p{cpi}d{cdi}t{cti}"))
                    .add(bytes as u64);
                total += bytes;
            }
            sink.metrics.counter("comm_bytes_total").add(total as u64);
        }

        TrainOutcome {
            log: TrainLog {
                losses: Arc::try_unwrap(losses)
                    .unwrap()
                    .into_inner()
                    .unwrap_or_else(|e| e.into_inner()),
                final_params: Arc::try_unwrap(final_params)
                    .unwrap()
                    .into_inner()
                    .unwrap_or_else(|e| e.into_inner()),
                peak_stash_floats: Arc::try_unwrap(peak_stash)
                    .unwrap()
                    .into_inner()
                    .unwrap_or_else(|e| e.into_inner()),
                step_times: Arc::try_unwrap(step_times)
                    .unwrap()
                    .into_inner()
                    .unwrap_or_else(|e| e.into_inner()),
                comm_volumes,
                comm_ops: Arc::try_unwrap(comm_ops)
                    .unwrap()
                    .into_inner()
                    .unwrap_or_else(|e| e.into_inner()),
            },
            error,
            snapshot,
        }
    }
}
