//! Run inputs and outputs: the failure-handling knobs ([`RunControl`]),
//! everything a run produces ([`TrainLog`], [`TrainOutcome`]), checkpoint
//! state ([`TrainSnapshot`]), and the per-thread instrumentation records
//! (step timings, comm volumes, and the replayable comm-op tape).

use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use megatron_telemetry::TelemetrySink;
use megatron_tensor::AdamState;

use crate::checkpoint::CheckpointStore;
use crate::comm::{CollectiveOp, CommError, CommVolume, StallContext, TransportConfig};
use crate::health::HealthMonitor;

use super::spec::ThreadKey;

/// Shared per-thread output map.
pub(crate) type SharedMap<V> = Arc<Mutex<HashMap<ThreadKey, V>>>;

/// One timed training step of one thread. Samples are indexed by
/// (incident `epoch`, absolute `iteration`), so a run resumed after a
/// supervisor restart never interleaves its timings with the pre-failure
/// attempt's — a plain `Vec<f64>` lost that provenance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepSample {
    /// Supervisor incident epoch (attempt number; 0 for a clean run). Set
    /// from [`RunControl::epoch`].
    pub epoch: usize,
    /// Absolute iteration index into the run's data.
    pub iteration: usize,
    /// Wall-clock seconds the step took on this thread.
    pub seconds: f64,
}

/// Per-thread communication totals for one run: tensor-group and
/// data-parallel-group collective volumes (measured transport bytes, f32)
/// plus pipeline p2p activation/gradient sends.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RankCommVolume {
    /// Tensor-parallel group collectives (the §3.2 per-layer all-reduces).
    pub tensor: CommVolume,
    /// Data-parallel group collectives (gradient averaging / ZeRO).
    pub data: CommVolume,
    /// Bytes this thread sent over pipeline stage boundaries (§3.2's
    /// `bsh`-sized transfers).
    pub p2p_send_bytes: f64,
}

impl RankCommVolume {
    /// Total bytes across all channels.
    pub fn total_bytes(&self) -> f64 {
        self.tensor.total_bytes() + self.data.total_bytes() + self.p2p_send_bytes
    }
}

/// The replayable communication tape of one thread: every collective it
/// issued on its tensor and data groups (in issue order), plus each
/// pipeline p2p send with its destination thread and f32 element count.
///
/// Replaying the tape through [`CollectiveOp::program`] rebuilds the exact
/// step programs the mailbox transport executed, so a simulator lowering
/// the same tape onto discrete-event links reproduces the run's traffic
/// byte for byte (asserted by the `real_vs_sim_bytes` integration test).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RankCommOps {
    /// Collectives on the tensor group, in order.
    pub tensor: Vec<CollectiveOp>,
    /// Collectives on the data-parallel group, in order.
    pub data: Vec<CollectiveOp>,
    /// Pipeline p2p sends: (destination thread, f32 elements).
    pub p2p_sends: Vec<(ThreadKey, usize)>,
}

impl RankCommOps {
    /// Total bytes this tape implies the thread sent, independently of the
    /// transport counters: collective egress from the rebuilt step
    /// programs plus the recorded p2p payloads.
    pub fn total_bytes(
        &self,
        tensor_ranks: usize,
        tensor_rank: usize,
        data_ranks: usize,
        data_rank: usize,
    ) -> f64 {
        let coll: usize = self
            .tensor
            .iter()
            .map(|op| op.program(tensor_ranks).sent_elems(tensor_rank))
            .chain(
                self.data
                    .iter()
                    .map(|op| op.program(data_ranks).sent_elems(data_rank)),
            )
            .sum();
        let p2p: usize = self.p2p_sends.iter().map(|(_, n)| n).sum();
        (coll + p2p) as f64 * crate::comm::BYTES_F32
    }
}

/// Result of a training run.
pub struct TrainLog {
    /// Mean loss per iteration (averaged over microbatches and replicas).
    /// A resumed run only fills the entries it executed.
    pub losses: Vec<f32>,
    /// Flattened final parameters per thread, keyed `(pipeline, data,
    /// tensor)` — in each thread's canonical visit order, for equivalence
    /// checks against shards of a serially trained model.
    pub final_params: HashMap<ThreadKey, Vec<f32>>,
    /// Peak stashed-activation floats per thread — the §3.5 memory metric
    /// (GPipe stashes m microbatches, 1F1B at most p, recompute only the
    /// chunk inputs).
    pub peak_stash_floats: HashMap<ThreadKey, usize>,
    /// Wall-clock step samples per thread, tagged (epoch, iteration) — the
    /// raw material for straggler detection (`megatron-fault`) and the
    /// supervisor's goodput accounting.
    pub step_times: HashMap<ThreadKey, Vec<StepSample>>,
    /// Communication volume per thread (threads that completed the run).
    pub comm_volumes: HashMap<ThreadKey, RankCommVolume>,
    /// Replayable comm-op tape per thread (threads that completed the
    /// run): the input for lowering the same job onto the simulator.
    pub comm_ops: HashMap<ThreadKey, RankCommOps>,
}

/// One thread's share of an in-memory checkpoint: its flattened parameters
/// plus the full Adam state. Exact f32 copies, so a restore resumes
/// bit-identically.
#[derive(Debug, Clone)]
pub struct ThreadState {
    /// Flattened parameters in canonical visit order.
    pub params: Vec<f32>,
    /// Optimizer state.
    pub adam: AdamState,
}

/// A consistent in-memory checkpoint of the whole job, taken after the
/// optimizer step of iteration `next_iter - 1`.
#[derive(Debug, Clone, Default)]
pub struct TrainSnapshot {
    /// First iteration a resumed run should execute.
    pub next_iter: usize,
    /// Per-thread state, keyed `(pipeline, data, tensor)`.
    pub threads: HashMap<ThreadKey, ThreadState>,
}

/// Deliberately kill one rank mid-iteration (fault-injection hook): the
/// thread poisons its groups and exits halfway through its schedule ops
/// for that iteration, as if its GPU died.
#[derive(Debug, Clone, Copy)]
pub struct KillSwitch {
    /// Which thread dies.
    pub thread: ThreadKey,
    /// Iteration (0-based, absolute) during which it dies.
    pub iteration: usize,
}

/// Failure-handling knobs for
/// [`PtdpTrainer::train_with`](crate::trainer::PtdpTrainer::train_with).
#[derive(Default)]
pub struct RunControl {
    /// Snapshot the full job state every `k` iterations (after the
    /// optimizer step of iterations k-1, 2k-1, ...).
    pub checkpoint_every: Option<usize>,
    /// Resume from a previous checkpoint instead of the master weights.
    pub restore: Option<TrainSnapshot>,
    /// Kill a rank mid-iteration.
    pub kill: Option<KillSwitch>,
    /// Override [`PtdpSpec::comm_timeout`](super::PtdpSpec) for this run
    /// only.
    pub comm_timeout: Option<Duration>,
    /// Persist every in-memory checkpoint to this store as well: each
    /// thread writes its own shard and the thread completing a generation
    /// commits it (canonical layout + manifest).
    pub durable: Option<Arc<CheckpointStore>>,
    /// Incident epoch this run belongs to (the supervisor's attempt
    /// counter). Tags every [`StepSample`] and telemetry span, so samples
    /// from different restart attempts never interleave.
    pub epoch: usize,
    /// Telemetry sink: when set, every thread records per-microbatch
    /// fwd/bwd/comm/opt/checkpoint/bubble spans and the run feeds the
    /// metrics registry (iteration times, comm volume, bubble fraction).
    pub telemetry: Option<Arc<TelemetrySink>>,
    /// Wire configuration for every communicator group of the run:
    /// seeded transient-fault injection and/or the reliable retry layer
    /// (see `comm::TransportConfig`). Each group derives its own fault
    /// stream from the base seed, so runs stay deterministic.
    pub transport: TransportConfig,
    /// Heartbeat collector: when set, every rank thread beats once per
    /// iteration, enabling dead-vs-slow classification.
    pub health: Option<Arc<HealthMonitor>>,
    /// Extra per-iteration beat hook, invoked with the flat rank at the
    /// same site as [`RunControl::health`]. Process mode uses it to push a
    /// heartbeat frame over the launcher socket so a monitor in *another*
    /// process can classify this rank.
    pub on_beat: Option<Arc<dyn Fn(usize) + Send + Sync>>,
}

/// Why a thread of a training run stopped early.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrainError {
    /// This rank was deliberately killed by a [`KillSwitch`].
    Killed(ThreadKey),
    /// A collective failed (peer died or timed out).
    Comm(CommError),
    /// A pipeline channel closed because a peer exited early. The
    /// [`StallContext`] names the boundary (as a pseudo-collective) and
    /// the stage peer's flat rank, mirroring group-collective stalls.
    PipelineBroken(StallContext),
    /// The restore snapshot has no state for this thread.
    MissingThreadState(ThreadKey),
    /// Writing a durable checkpoint shard or committing a generation
    /// failed (I/O error). The run is aborted: silently continuing would
    /// leave the job without restore points.
    Checkpoint(String),
    /// A thread panicked for a reason other than a communicator failure.
    ThreadPanicked(String),
}

impl std::fmt::Display for TrainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrainError::Killed(k) => write!(f, "rank {k:?} was killed"),
            TrainError::Comm(e) => write!(f, "collective failed: {e}"),
            TrainError::PipelineBroken(ctx) => match ctx.peer {
                Some(p) => write!(
                    f,
                    "pipeline channel closed by a dead peer: {} at op {}/{}, stage peer rank {}",
                    ctx.collective,
                    ctx.round + 1,
                    ctx.rounds,
                    p
                ),
                None => write!(
                    f,
                    "pipeline channel closed by a dead peer: {}",
                    ctx.collective
                ),
            },
            TrainError::MissingThreadState(k) => {
                write!(f, "snapshot has no state for thread {k:?}")
            }
            TrainError::Checkpoint(m) => write!(f, "durable checkpoint failed: {m}"),
            TrainError::ThreadPanicked(m) => write!(f, "worker thread panicked: {m}"),
        }
    }
}

impl std::error::Error for TrainError {}

/// Everything a (possibly failed)
/// [`PtdpTrainer::train_with`](crate::trainer::PtdpTrainer::train_with)
/// run produced.
pub struct TrainOutcome {
    /// Losses / final params / instrumentation. On a failed run, only the
    /// entries completed before the failure are filled.
    pub log: TrainLog,
    /// The first error observed, if the run did not complete. A run with a
    /// [`KillSwitch`] always reports an error (`Killed` on the dead rank's
    /// side, a comm/pipeline error from the survivors).
    pub error: Option<TrainError>,
    /// The most recent checkpoint completed by *every* thread, if
    /// checkpointing was enabled and one completed before the failure.
    pub snapshot: Option<TrainSnapshot>,
}
