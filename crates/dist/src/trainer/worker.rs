//! The per-thread training loop: one OS thread per (pipeline, data,
//! tensor) coordinate executing its schedule ops — embedding/chunk
//! forwards, p2p activation exchange, backwards, and the flush-time
//! optimizer semantics — with telemetry spans and the comm-op tape
//! recorded along the way.

use std::collections::HashMap;
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use megatron_schedule::Pass;
use megatron_tensor::gpt::GptModel;
use megatron_tensor::layers::cross_entropy;
use megatron_tensor::{Adam, Matrix};

use megatron_telemetry::{RankTracer, SpanArgs, SpanKind, TelemetrySink};

use crate::comm::{
    ring_all_gather_bytes, ring_all_reduce_bytes, ring_reduce_scatter_bytes, CommError, CommPanic,
    GroupMember, StallContext, BYTES_F32,
};

use super::logs::{
    RankCommOps, RankCommVolume, RunControl, SharedMap, StepSample, ThreadState, TrainError,
};
use super::model::{build_thread_model, ChunkCache, DLogits, HeadCache, HeadShard};
use super::spec::{PtdpSpec, ThreadKey};

/// Map a worker panic to a [`TrainError`]. The inner tensor/vocab
/// collectives surface communicator failures by panicking with a typed
/// [`CommPanic`] payload; anything else is a genuine bug in the worker.
/// No string matching: a reworded panic message can never flip the
/// classification.
pub(crate) fn classify_panic(payload: &(dyn std::any::Any + Send)) -> TrainError {
    if let Some(CommPanic(e)) = payload.downcast_ref::<CommPanic>() {
        return TrainError::Comm(e.clone());
    }
    let msg = payload
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "unknown panic".to_string());
    TrainError::ThreadPanicked(msg)
}

/// Publishes the thread's transport retry/fault counters into the
/// telemetry metrics on scope exit — including the error paths, so
/// transient faults absorbed before a later fatal failure still show up
/// (the supervisor reads these to log `Transient` incidents).
struct TransportStatsFlush<'a> {
    tg: &'a GroupMember,
    dg: &'a GroupMember,
    sink: Option<Arc<TelemetrySink>>,
}

impl Drop for TransportStatsFlush<'_> {
    fn drop(&mut self) {
        let Some(sink) = &self.sink else { return };
        let rs = self.tg.retry_stats().plus(&self.dg.retry_stats());
        let ft = self.tg.fault_tally().plus(&self.dg.fault_tally());
        if rs.retries > 0 {
            sink.metrics.counter("transport_retries").add(rs.retries);
        }
        if rs.retransmits > 0 {
            sink.metrics
                .counter("transport_retransmits")
                .add(rs.retransmits);
        }
        if rs.duplicates_dropped > 0 {
            sink.metrics
                .counter("transport_duplicates_dropped")
                .add(rs.duplicates_dropped);
        }
        if ft.total() > 0 {
            sink.metrics
                .counter("transport_faults_injected")
                .add(ft.total());
        }
    }
}

/// Channel endpoints for one thread.
#[derive(Default)]
pub(crate) struct Endpoints {
    pub(crate) fwd_in: HashMap<usize, Receiver<Matrix>>,
    pub(crate) fwd_out: HashMap<usize, Sender<Matrix>>,
    pub(crate) bwd_in: HashMap<usize, Receiver<Matrix>>,
    pub(crate) bwd_out: HashMap<usize, Sender<Matrix>>,
}

pub(crate) struct ThreadArgs<'a> {
    pub(crate) pi: usize,
    pub(crate) di: usize,
    pub(crate) ti: usize,
    pub(crate) spec: PtdpSpec,
    pub(crate) master: &'a GptModel,
    pub(crate) schedule: &'a megatron_schedule::PipelineSchedule,
    pub(crate) data: &'a [(Vec<usize>, Vec<usize>)],
    pub(crate) ep: Endpoints,
    pub(crate) tg: GroupMember,
    pub(crate) dg: GroupMember,
    pub(crate) losses: Arc<Mutex<Vec<f32>>>,
    pub(crate) final_params: SharedMap<Vec<f32>>,
    pub(crate) peak_stash: SharedMap<usize>,
    pub(crate) step_times: SharedMap<Vec<StepSample>>,
    pub(crate) comm_volumes: SharedMap<RankCommVolume>,
    pub(crate) comm_ops: SharedMap<RankCommOps>,
    pub(crate) ctl: &'a RunControl,
    pub(crate) ckpts: &'a Mutex<HashMap<usize, HashMap<ThreadKey, ThreadState>>>,
}

/// Per-iteration context every telemetry span is tagged with.
#[derive(Clone, Copy)]
struct SpanCtx {
    iteration: usize,
    epoch: usize,
}

/// Close a telemetry span opened at `start_ns`, if tracing is on. Returns
/// the span duration in ns (0 when tracing is off), so call sites can
/// accumulate e.g. bubble time for the metrics counters.
fn emit(
    tracer: &mut Option<RankTracer>,
    ctx: SpanCtx,
    kind: SpanKind,
    name: &'static str,
    start_ns: Option<u64>,
    args: SpanArgs,
) -> u64 {
    match (tracer.as_mut(), start_ns) {
        (Some(tr), Some(t0)) => tr.close(kind, name, t0, ctx.iteration, ctx.epoch, args),
        _ => 0,
    }
}

/// Current hub time, if tracing is on (span-open helper).
fn tnow(tracer: &Option<RankTracer>) -> Option<u64> {
    tracer.as_ref().map(RankTracer::now)
}

/// Final-LayerNorm → head → loss, for either head layout. Returns the
/// (replicated) mean loss and the backward cache.
fn head_forward(
    head: &HeadShard,
    x: &Matrix,
    targets: &[usize],
    tg: &GroupMember,
) -> (f32, HeadCache) {
    match head {
        HeadShard::Replicated(ln, lm) => {
            let (hf, ln_cache) = ln.forward(x);
            let logits = lm.forward(&hf);
            let (loss, dlogits) = cross_entropy(&logits, targets);
            (
                loss,
                HeadCache {
                    ln: ln_cache,
                    hidden_final: hf,
                    dlogits: DLogits::Full(dlogits),
                },
            )
        }
        HeadShard::VocabParallel(ln, hd) => {
            let (hf, ln_cache) = ln.forward(x);
            let (loss, cache) = hd.forward_loss(&hf, targets, tg);
            (
                loss,
                HeadCache {
                    ln: ln_cache,
                    hidden_final: hf,
                    dlogits: DLogits::Shard(cache),
                },
            )
        }
    }
}

/// Head backward for either layout; returns the gradient entering the
/// final LayerNorm's input.
fn head_backward(head: &mut HeadShard, hc: &HeadCache, tg: &GroupMember) -> Matrix {
    match (head, &hc.dlogits) {
        (HeadShard::Replicated(ln, lm), DLogits::Full(dlogits)) => {
            let dhf = lm.backward(&hc.hidden_final, dlogits);
            ln.backward(&hc.ln, &dhf)
        }
        (HeadShard::VocabParallel(ln, hd), DLogits::Shard(cache)) => {
            let mut dhf = hd.backward_partial(&hc.hidden_final, cache);
            // f operator of the column-parallel head: all-reduce the
            // partial hidden gradient.
            tg.all_reduce_sum(dhf.as_mut_slice());
            ln.backward(&hc.ln, &dhf)
        }
        _ => unreachable!("head layout and cache variant always match"),
    }
}

pub(crate) fn run_thread(args: ThreadArgs<'_>) -> Result<(), TrainError> {
    let ThreadArgs {
        pi,
        di,
        ti,
        spec,
        master,
        schedule,
        data,
        ep,
        tg,
        dg,
        losses,
        final_params,
        peak_stash,
        step_times,
        comm_volumes,
        comm_ops,
        ctl,
        ckpts,
    } = args;
    let cfg = master.cfg;
    let (p, v) = (spec.pipeline, spec.chunks);
    let stages = p * v;
    let last_stage = stages - 1;
    let layers_per_stage = cfg.layers / stages;
    let seq = cfg.seq;
    let b = spec.microbatch;
    let per_replica = data[0].0.len() / seq / spec.data;
    let m = per_replica / b;
    let key: ThreadKey = (pi, di, ti);

    // Any early return must poison both groups first, or peers blocked in
    // a collective would sit out the full timeout instead of failing fast.
    let fail = |e: CommError| {
        tg.poison();
        dg.poison();
        TrainError::Comm(e)
    };
    // Pipeline p2p failures carry the same StallContext shape as group
    // collectives: the boundary as a pseudo-collective, the schedule op
    // as the step, and the stage peer's flat rank — so a stalled pipeline
    // names exactly which neighbor died, not just "a peer".
    let ops_total = schedule.ops[pi].len();
    let broken = |boundary: &'static str, opi: usize, peer_pi: usize| {
        tg.poison();
        dg.poison();
        TrainError::PipelineBroken(StallContext::new(
            boundary,
            opi,
            ops_total,
            Some(peer_pi * (spec.data * spec.tensor) + di * spec.tensor + ti),
        ))
    };

    let mut model = build_thread_model(master, &spec, pi, ti);
    let mut adam = Adam::new(spec.lr);
    let owns_last = model.head.is_some();

    // Telemetry: one single-writer tracer per thread (publishes into the
    // hub on drop, so spans survive the error paths too), plus cached
    // handles to the shared bubble/step counters.
    let flat_rank = pi * (spec.data * spec.tensor) + di * spec.tensor + ti;
    let mut tracer = ctl.telemetry.as_ref().map(|s| {
        s.hub
            .tracer(flat_rank, key)
            .with_drop_counter(s.metrics.counter(&format!("spans_dropped.rank{flat_rank}")))
    });
    let _stats_flush = TransportStatsFlush {
        tg: &tg,
        dg: &dg,
        sink: ctl.telemetry.clone(),
    };
    let iter_counters = ctl.telemetry.as_ref().map(|s| {
        (
            s.metrics.counter(TelemetrySink::BUBBLE_NS),
            s.metrics.counter(TelemetrySink::STEP_NS),
        )
    });
    let mut p2p_send_bytes = 0.0f64;
    let mut p2p_sends: Vec<(ThreadKey, usize)> = Vec::new();

    let start_iter = if let Some(snap) = &ctl.restore {
        let st = snap.threads.get(&key).ok_or_else(|| {
            tg.poison();
            dg.poison();
            TrainError::MissingThreadState(key)
        })?;
        model.set_flat_params(&st.params);
        adam.import_state(st.adam.clone());
        snap.next_iter
    } else {
        0
    };
    let kill_iter = ctl.kill.filter(|k| k.thread == key).map(|k| k.iteration);

    for (iter, (tokens, targets)) in data.iter().enumerate().skip(start_iter) {
        let iter_start = Instant::now();
        let ctx = SpanCtx {
            iteration: iter,
            epoch: ctl.epoch,
        };
        let mut bubble_ns = 0u64;
        // This replica's slice.
        let lo = di * per_replica * seq;
        let replica_tokens = &tokens[lo..lo + per_replica * seq];
        let replica_targets = &targets[lo..lo + per_replica * seq];
        let mb_tokens = |mb: usize| &replica_tokens[mb * b * seq..(mb + 1) * b * seq];
        let mb_targets = |mb: usize| &replica_targets[mb * b * seq..(mb + 1) * b * seq];

        model.visit(&mut |_, g| g.fill(0.0));
        let mut stash: HashMap<(usize, usize), ChunkCache> = HashMap::new();
        let mut stash_floats = 0usize;
        let mut loss_sum = 0.0f32;

        for (opi, op) in schedule.ops[pi].iter().enumerate() {
            // Fault-injection hook: die halfway through this iteration's
            // op list, as if the GPU failed mid-step.
            if kill_iter == Some(iter) && opi == schedule.ops[pi].len() / 2 {
                tg.poison();
                dg.poison();
                return Err(TrainError::Killed(key));
            }
            let stage = schedule.stage_of(pi, op.chunk);
            match op.pass {
                Pass::Forward => {
                    let toks = mb_tokens(op.microbatch);
                    let mb_args = SpanArgs {
                        bytes: None,
                        microbatch: Some(op.microbatch),
                        chunk: Some(op.chunk),
                    };
                    let t_in = tnow(&tracer);
                    let input = if stage == 0 {
                        model
                            .embed
                            .as_ref()
                            .expect("stage 0 owns embed")
                            .forward(toks, seq, &tg)
                    } else {
                        ep.fwd_in[&stage]
                            .recv()
                            .map_err(|_| broken("pipeline-recv-fwd", opi, (stage - 1) % p))?
                    };
                    // For stage 0 the time since t_in is embedding compute
                    // (part of the forward span); everywhere else it is a
                    // pipeline wait (bubble).
                    let t_fwd = if stage == 0 {
                        t_in
                    } else {
                        bubble_ns += emit(
                            &mut tracer,
                            ctx,
                            SpanKind::Bubble,
                            "pipeline-wait-fwd",
                            t_in,
                            mb_args,
                        );
                        tnow(&tracer)
                    };
                    let mut x = input.clone();
                    let mut block_caches = Vec::with_capacity(layers_per_stage);
                    for blk in &model.chunks[op.chunk] {
                        let (nx, c) = blk.forward(&x, b, seq, &tg);
                        x = nx;
                        if !spec.recompute {
                            block_caches.push(c);
                        }
                    }
                    let mut cache = ChunkCache {
                        block_caches,
                        input: spec.recompute.then_some(input),
                        head: None,
                        tokens: (stage == 0).then(|| toks.to_vec()),
                    };
                    if stage == last_stage {
                        let head = model.head.as_ref().expect("last stage owns head");
                        let targets = mb_targets(op.microbatch);
                        let (loss, head_cache) = head_forward(head, &x, targets, &tg);
                        loss_sum += loss;
                        if !spec.recompute {
                            cache.head = Some(head_cache);
                        }
                        emit(
                            &mut tracer,
                            ctx,
                            SpanKind::Forward,
                            "forward",
                            t_fwd,
                            mb_args,
                        );
                    } else {
                        emit(
                            &mut tracer,
                            ctx,
                            SpanKind::Forward,
                            "forward",
                            t_fwd,
                            mb_args,
                        );
                        let send_elems = x.len();
                        let send_bytes = send_elems as f64 * BYTES_F32;
                        let t_send = tnow(&tracer);
                        ep.fwd_out[&stage]
                            .send(x)
                            .map_err(|_| broken("pipeline-send-fwd", opi, (stage + 1) % p))?;
                        emit(
                            &mut tracer,
                            ctx,
                            SpanKind::Comm,
                            "p2p-send-fwd",
                            t_send,
                            SpanArgs {
                                bytes: Some(send_bytes),
                                ..mb_args
                            },
                        );
                        p2p_send_bytes += send_bytes;
                        p2p_sends.push((((stage + 1) % p, di, ti), send_elems));
                    }
                    stash_floats += cache.float_count();
                    // Log mutexes tolerate poison: a peer that died holding
                    // one must not crash the survivors (they report a clean
                    // CommError instead).
                    let mut peak = peak_stash.lock().unwrap_or_else(|e| e.into_inner());
                    let e = peak.entry((pi, di, ti)).or_insert(0);
                    *e = (*e).max(stash_floats);
                    drop(peak);
                    stash.insert((op.microbatch, op.chunk), cache);
                }
                Pass::Backward => {
                    let mb_args = SpanArgs {
                        bytes: None,
                        microbatch: Some(op.microbatch),
                        chunk: Some(op.chunk),
                    };
                    let mut cache = stash
                        .remove(&(op.microbatch, op.chunk))
                        .expect("backward before forward");
                    stash_floats -= cache.float_count();
                    if spec.recompute {
                        // §3.5: rerun the forward pass from the stashed
                        // input to rebuild all intermediate activations
                        // (bit-identical to the discarded ones).
                        let t_rc = tnow(&tracer);
                        let mut x = cache.input.take().expect("recompute stash");
                        let mut rebuilt = Vec::with_capacity(layers_per_stage);
                        for blk in &model.chunks[op.chunk] {
                            let (nx, c) = blk.forward(&x, b, seq, &tg);
                            x = nx;
                            rebuilt.push(c);
                        }
                        cache.block_caches = rebuilt;
                        if stage == last_stage {
                            let head = model.head.as_ref().expect("head");
                            let (_, head_cache) =
                                head_forward(head, &x, mb_targets(op.microbatch), &tg);
                            cache.head = Some(head_cache);
                        }
                        emit(
                            &mut tracer,
                            ctx,
                            SpanKind::Forward,
                            "recompute-forward",
                            t_rc,
                            mb_args,
                        );
                    }
                    let (mut dx, t_bwd) = if stage == last_stage {
                        let t0 = tnow(&tracer);
                        let hc = cache.head.as_ref().expect("head cache");
                        let head = model.head.as_mut().expect("head");
                        (head_backward(head, hc, &tg), t0)
                    } else {
                        let t_wait = tnow(&tracer);
                        let dx = ep.bwd_in[&stage]
                            .recv()
                            .map_err(|_| broken("pipeline-recv-bwd", opi, (stage + 1) % p))?;
                        bubble_ns += emit(
                            &mut tracer,
                            ctx,
                            SpanKind::Bubble,
                            "pipeline-wait-bwd",
                            t_wait,
                            mb_args,
                        );
                        (dx, tnow(&tracer))
                    };
                    for (blk, c) in model.chunks[op.chunk]
                        .iter_mut()
                        .zip(&cache.block_caches)
                        .rev()
                    {
                        dx = blk.backward(c, &dx, b, seq, &tg);
                    }
                    if stage > 0 {
                        emit(
                            &mut tracer,
                            ctx,
                            SpanKind::Backward,
                            "backward",
                            t_bwd,
                            mb_args,
                        );
                        let send_elems = dx.len();
                        let send_bytes = send_elems as f64 * BYTES_F32;
                        let t_send = tnow(&tracer);
                        ep.bwd_out[&stage]
                            .send(dx)
                            .map_err(|_| broken("pipeline-send-bwd", opi, (stage - 1) % p))?;
                        emit(
                            &mut tracer,
                            ctx,
                            SpanKind::Comm,
                            "p2p-send-bwd",
                            t_send,
                            SpanArgs {
                                bytes: Some(send_bytes),
                                ..mb_args
                            },
                        );
                        p2p_send_bytes += send_bytes;
                        p2p_sends.push((((stage - 1) % p, di, ti), send_elems));
                    } else {
                        let toks = cache.tokens.as_ref().expect("stage-0 tokens");
                        model
                            .embed
                            .as_mut()
                            .expect("stage 0 owns embed")
                            .backward(toks, seq, &dx);
                        emit(
                            &mut tracer,
                            ctx,
                            SpanKind::Backward,
                            "backward",
                            t_bwd,
                            mb_args,
                        );
                    }
                }
            }
        }
        assert!(stash.is_empty(), "flush left microbatches in flight");

        // --- Pipeline flush complete: optimizer semantics ---
        // Gradients currently hold Σ over microbatches of per-microbatch
        // means; rescale to the replica mean, then average over replicas.
        let inv_m = 1.0 / m as f32;
        model.visit(&mut |_, g| {
            for x in g.iter_mut() {
                *x *= inv_m;
            }
        });

        // Report loss (last stage, tensor rank 0): replica mean, then mean
        // over data-parallel replicas.
        if owns_last && ti == 0 {
            let mut l = [loss_sum * inv_m];
            let t_loss = tnow(&tracer);
            dg.try_all_reduce_mean(&mut l).map_err(&fail)?;
            emit(
                &mut tracer,
                ctx,
                SpanKind::Comm,
                "loss-allreduce",
                t_loss,
                SpanArgs::bytes(ring_all_reduce_bytes(spec.data, 1)),
            );
            if di == 0 {
                losses.lock().unwrap_or_else(|e| e.into_inner())[iter] = l[0];
            }
        }

        if spec.data > 1 && spec.shard_optimizer {
            // ZeRO-1 path: reduce-scatter gradients, step the owned slice,
            // all-gather updated parameters. The rank-ordered reductions
            // make this bit-identical to the replicated path.
            let d = spec.data;
            let mut flat_p = Vec::new();
            let mut flat_g = Vec::new();
            model.visit(&mut |pp, gg| {
                flat_p.extend_from_slice(pp);
                flat_g.extend_from_slice(gg);
            });
            let n0 = flat_g.len();
            let pad = (d - n0 % d) % d;
            flat_g.resize(n0 + pad, 0.0);
            flat_p.resize(n0 + pad, 0.0);
            let chunk = (n0 + pad) / d;
            let t_rs = tnow(&tracer);
            let mut gshard = dg.try_reduce_scatter_sum(&flat_g).map_err(&fail)?;
            emit(
                &mut tracer,
                ctx,
                SpanKind::Comm,
                "grad-reduce-scatter",
                t_rs,
                SpanArgs::bytes(ring_reduce_scatter_bytes(d, flat_g.len())),
            );
            let inv_d = 1.0 / d as f32;
            for x in &mut gshard {
                *x *= inv_d;
            }
            let lo = di * chunk;
            let mut pshard = flat_p[lo..lo + chunk].to_vec();
            let t_opt = tnow(&tracer);
            adam.step(&mut [(&mut pshard, &mut gshard)]);
            emit(
                &mut tracer,
                ctx,
                SpanKind::Optimizer,
                "adam-step",
                t_opt,
                SpanArgs::NONE,
            );
            let t_ag = tnow(&tracer);
            let mut gathered = dg.try_all_gather(&pshard).map_err(&fail)?;
            emit(
                &mut tracer,
                ctx,
                SpanKind::Comm,
                "param-allgather",
                t_ag,
                SpanArgs::bytes(ring_all_gather_bytes(d, pshard.len())),
            );
            gathered.truncate(n0);
            let mut off = 0;
            model.visit(&mut |pp, _| {
                pp.copy_from_slice(&gathered[off..off + pp.len()]);
                off += pp.len();
            });
        } else {
            // Data-parallel gradient averaging, parameter by parameter
            // (same order on every member of the group).
            if spec.data > 1 {
                let t_ar = tnow(&tracer);
                let ar_before = dg.comm_volume().all_reduce_bytes;
                let mut comm_err: Option<CommError> = None;
                model.visit(&mut |_, g| {
                    if comm_err.is_none() {
                        if let Err(e) = dg.try_all_reduce_mean(g) {
                            comm_err = Some(e);
                        }
                    }
                });
                if let Some(e) = comm_err {
                    return Err(fail(e));
                }
                emit(
                    &mut tracer,
                    ctx,
                    SpanKind::Comm,
                    "grad-allreduce",
                    t_ar,
                    SpanArgs::bytes(dg.comm_volume().all_reduce_bytes - ar_before),
                );
            }
            let mut pairs = model.param_grad_pairs();
            let t_opt = tnow(&tracer);
            adam.step(&mut pairs);
            emit(
                &mut tracer,
                ctx,
                SpanKind::Optimizer,
                "adam-step",
                t_opt,
                SpanArgs::NONE,
            );
        }

        // --- Optimizer step done: checkpoint + instrumentation ---
        if let Some(k) = ctl.checkpoint_every {
            if k > 0 && (iter + 1).is_multiple_of(k) {
                let t_ck = tnow(&tracer);
                let state = ThreadState {
                    params: model.flat_params(),
                    adam: adam.export_state(),
                };
                let ckpt_fail = |e: crate::checkpoint::CheckpointError| {
                    tg.poison();
                    dg.poison();
                    TrainError::Checkpoint(e.to_string())
                };
                if let Some(store) = &ctl.durable {
                    store
                        .write_shard(&spec, key, iter + 1, &state)
                        .map_err(ckpt_fail)?;
                }
                // The thread whose shard completes the generation commits
                // it (canonical layout + manifest); peers may already be
                // running the next iteration.
                let complete = {
                    let mut map = ckpts.lock().unwrap_or_else(|e| e.into_inner());
                    let entry = map.entry(iter + 1).or_default();
                    entry.insert(key, state);
                    (entry.len() == spec.world()).then(|| entry.clone())
                };
                if let (Some(threads), Some(store)) = (complete, &ctl.durable) {
                    store
                        .commit_generation(&spec, cfg, iter + 1, &threads)
                        .map_err(ckpt_fail)?;
                }
                emit(
                    &mut tracer,
                    ctx,
                    SpanKind::Checkpoint,
                    "checkpoint-save",
                    t_ck,
                    SpanArgs::NONE,
                );
            }
        }
        let seconds = iter_start.elapsed().as_secs_f64();
        if let Some((bubble_ctr, step_ctr)) = &iter_counters {
            bubble_ctr.add(bubble_ns);
            step_ctr.add((seconds * 1e9).round() as u64);
        }
        // Satellite fix: samples carry (incident epoch, iteration) so a
        // supervisor restart can't interleave its timings with the ones
        // recorded before the fault (they used to be bare f64 pushes).
        step_times
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .entry(key)
            .or_default()
            .push(StepSample {
                epoch: ctl.epoch,
                iteration: iter,
                seconds,
            });
        // Liveness beacon: one beat per completed iteration (the natural
        // heartbeat period of a training rank).
        if let Some(mon) = &ctl.health {
            mon.beat(flat_rank);
        }
        if let Some(beat) = &ctl.on_beat {
            beat(flat_rank);
        }
        if owns_last && ti == 0 && di == 0 {
            if let Some(sink) = &ctl.telemetry {
                sink.record_iteration(ctl.epoch, iter, seconds);
            }
        }
    }

    comm_volumes
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .insert(
            key,
            RankCommVolume {
                tensor: tg.comm_volume(),
                data: dg.comm_volume(),
                p2p_send_bytes,
            },
        );
    comm_ops.lock().unwrap_or_else(|e| e.into_inner()).insert(
        key,
        RankCommOps {
            tensor: tg.take_op_log(),
            data: dg.take_op_log(),
            p2p_sends,
        },
    );
    final_params
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .insert(key, model.flat_params());
    Ok(())
}
