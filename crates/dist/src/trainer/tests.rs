use super::*;
use std::time::Duration;

use megatron_schedule::ScheduleKind;
use megatron_tensor::gpt::TinyGptConfig;
use megatron_tensor::Adam;
use rand::Rng;
use rand::SeedableRng;

fn tiny(layers: usize) -> TinyGptConfig {
    TinyGptConfig {
        vocab: 13,
        seq: 6,
        hidden: 8,
        heads: 4,
        layers,
    }
}

fn make_data(
    cfg: TinyGptConfig,
    batch: usize,
    iterations: usize,
    seed: u64,
) -> Vec<(Vec<usize>, Vec<usize>)> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    (0..iterations)
        .map(|_| {
            let tokens: Vec<usize> = (0..batch * cfg.seq)
                .map(|_| rng.gen_range(0..cfg.vocab))
                .collect();
            let targets: Vec<usize> = (0..batch * cfg.seq)
                .map(|_| rng.gen_range(0..cfg.vocab))
                .collect();
            (tokens, targets)
        })
        .collect()
}

/// Serial reference: same data, same init, same Adam.
fn serial_losses(
    master: &GptModel,
    data: &[(Vec<usize>, Vec<usize>)],
    lr: f32,
) -> (Vec<f32>, GptModel) {
    let mut model = master.clone();
    let mut adam = Adam::new(lr);
    let batch = data[0].0.len() / model.cfg.seq;
    let mut losses = Vec::new();
    for (tokens, targets) in data {
        model.zero_grads();
        losses.push(model.loss_and_grad(tokens, targets, batch));
        let mut pairs = model.param_grad_pairs();
        adam.step(&mut pairs);
    }
    (losses, model)
}

fn assert_losses_close(a: &[f32], b: &[f32], tol: f32) {
    assert_eq!(a.len(), b.len());
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert!(
            (x - y).abs() < tol,
            "iteration {i}: ptdp {x} vs serial {y} (all: {a:?} vs {b:?})"
        );
    }
}

fn run_case(cfg: TinyGptConfig, spec: PtdpSpec, batch: usize) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(99);
    let master = GptModel::new(cfg, &mut rng);
    let data = make_data(cfg, batch, 4, 5);
    let (serial, _) = serial_losses(&master, &data, spec.lr);
    let log = PtdpTrainer::new(master, spec).train(&data);
    assert_losses_close(&log.losses, &serial, 5e-3);
}

#[test]
fn tensor_parallel_only_matches_serial() {
    let mut spec = PtdpSpec::new(1, 4, 1);
    spec.microbatch = 4;
    run_case(tiny(2), spec, 4);
}

#[test]
fn pipeline_1f1b_matches_serial() {
    let mut spec = PtdpSpec::new(2, 1, 1);
    spec.microbatch = 1;
    run_case(tiny(2), spec, 4);
}

#[test]
fn pipeline_gpipe_matches_serial() {
    let mut spec = PtdpSpec::new(2, 1, 1);
    spec.schedule = ScheduleKind::GPipe;
    spec.microbatch = 2;
    run_case(tiny(2), spec, 4);
}

#[test]
fn interleaved_schedule_matches_serial() {
    let mut spec = PtdpSpec::new(2, 1, 1);
    spec.chunks = 2;
    spec.schedule = ScheduleKind::Interleaved { chunks: 2 };
    spec.microbatch = 1;
    run_case(tiny(4), spec, 4); // m = 4 = multiple of p = 2
}

#[test]
fn data_parallel_only_matches_serial() {
    let mut spec = PtdpSpec::new(1, 1, 2);
    spec.microbatch = 2;
    run_case(tiny(2), spec, 4);
}

#[test]
fn full_ptdp_matches_serial() {
    // p=2, t=2, d=2 → 8 threads.
    let mut spec = PtdpSpec::new(2, 2, 2);
    spec.microbatch = 1;
    run_case(tiny(2), spec, 8);
}

#[test]
fn final_weights_match_serial_shards() {
    let cfg = tiny(2);
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let master = GptModel::new(cfg, &mut rng);
    let data = make_data(cfg, 4, 3, 21);
    let spec = {
        let mut s = PtdpSpec::new(2, 2, 1);
        s.microbatch = 1;
        s
    };
    let (_, serial_model) = serial_losses(&master, &data, spec.lr);
    let log = PtdpTrainer::new(master, spec).train(&data);

    // Rebuild each thread's expected final shard from the serially
    // trained model and compare flattened parameters.
    for ((pi, _di, ti), got) in &log.final_params {
        let mut expect = build_thread_model(&serial_model, &spec, *pi, *ti);
        let want = expect.flat_params();
        assert_eq!(want.len(), got.len(), "thread ({pi},{ti}) param count");
        let max_diff = want
            .iter()
            .zip(got)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        assert!(
            max_diff < 5e-3,
            "thread ({pi},{ti}): weights diverged by {max_diff}"
        );
    }
}

#[test]
fn replicas_stay_consistent() {
    // All data-parallel replicas of the same stage must end
    // bit-identical: deterministic collectives guarantee it.
    let cfg = tiny(2);
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let master = GptModel::new(cfg, &mut rng);
    let data = make_data(cfg, 8, 3, 17);
    let mut spec = PtdpSpec::new(2, 1, 2);
    spec.microbatch = 2;
    let log = PtdpTrainer::new(master, spec).train(&data);
    for pi in 0..2 {
        let a = &log.final_params[&(pi, 0, 0)];
        let b = &log.final_params[&(pi, 1, 0)];
        assert_eq!(a, b, "stage {pi} replicas diverged");
    }
}

#[test]
fn losses_decrease_under_ptdp() {
    // Memorize a fixed batch: loss must drop under the full 3-D layout.
    let cfg = tiny(2);
    let mut rng = rand::rngs::StdRng::seed_from_u64(31);
    let master = GptModel::new(cfg, &mut rng);
    let one = make_data(cfg, 8, 1, 77).remove(0);
    let data: Vec<_> = (0..15).map(|_| one.clone()).collect();
    let mut spec = PtdpSpec::new(2, 2, 2);
    spec.microbatch = 1;
    spec.lr = 0.02;
    let log = PtdpTrainer::new(master, spec).train(&data);
    assert!(
        log.losses[14] < log.losses[0] * 0.6,
        "losses: {:?}",
        log.losses
    );
}

#[test]
fn sharded_optimizer_matches_replicated() {
    // ZeRO-1 sharding must be numerically indistinguishable from
    // replicated Adam (rank-ordered reductions on both paths).
    let cfg = tiny(2);
    let mut rng = rand::rngs::StdRng::seed_from_u64(13);
    let master = GptModel::new(cfg, &mut rng);
    let data = make_data(cfg, 8, 4, 23);
    let mut spec = PtdpSpec::new(1, 1, 4);
    spec.microbatch = 2;
    let replicated = PtdpTrainer::new(master.clone(), spec).train(&data);
    spec.shard_optimizer = true;
    let sharded = PtdpTrainer::new(master, spec).train(&data);
    for (a, b) in replicated.losses.iter().zip(&sharded.losses) {
        assert!(
            (a - b).abs() < 1e-6,
            "{:?} vs {:?}",
            replicated.losses,
            sharded.losses
        );
    }
    // Final weights identical too.
    for (k, v) in &replicated.final_params {
        let w = &sharded.final_params[k];
        let max = v
            .iter()
            .zip(w)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0f32, f32::max);
        assert!(max < 1e-6, "thread {k:?} diverged by {max}");
    }
}

#[test]
fn sharded_optimizer_with_full_ptdp() {
    let cfg = tiny(2);
    let mut rng = rand::rngs::StdRng::seed_from_u64(41);
    let master = GptModel::new(cfg, &mut rng);
    let data = make_data(cfg, 8, 3, 29);
    let mut spec = PtdpSpec::new(2, 2, 2);
    spec.microbatch = 1;
    spec.shard_optimizer = true;
    let (serial, _) = serial_losses(&master, &data, spec.lr);
    let log = PtdpTrainer::new(master, spec).train(&data);
    assert_losses_close(&log.losses, &serial, 5e-3);
}

#[test]
fn vocab_parallel_matches_serial() {
    // Sharded embedding + head with distributed cross-entropy must
    // reproduce serial training. vocab=13 doesn't divide by 4, so use a
    // model with vocab 16 here.
    let cfg = TinyGptConfig {
        vocab: 16,
        seq: 6,
        hidden: 8,
        heads: 4,
        layers: 2,
    };
    let mut rng = rand::rngs::StdRng::seed_from_u64(53);
    let master = GptModel::new(cfg, &mut rng);
    let data = make_data(cfg, 4, 4, 19);
    let mut spec = PtdpSpec::new(1, 4, 1);
    spec.microbatch = 2;
    spec.vocab_parallel = true;
    let (serial, _) = serial_losses(&master, &data, spec.lr);
    let log = PtdpTrainer::new(master, spec).train(&data);
    assert_losses_close(&log.losses, &serial, 5e-3);
}

#[test]
fn vocab_parallel_full_ptdp() {
    let cfg = TinyGptConfig {
        vocab: 16,
        seq: 6,
        hidden: 8,
        heads: 4,
        layers: 2,
    };
    let mut rng = rand::rngs::StdRng::seed_from_u64(59);
    let master = GptModel::new(cfg, &mut rng);
    let data = make_data(cfg, 8, 3, 67);
    let mut spec = PtdpSpec::new(2, 2, 2);
    spec.microbatch = 1;
    spec.vocab_parallel = true;
    spec.recompute = true; // compose with recomputation too
    let (serial, _) = serial_losses(&master, &data, spec.lr);
    let log = PtdpTrainer::new(master, spec).train(&data);
    assert_losses_close(&log.losses, &serial, 5e-3);
}

#[test]
fn recompute_matches_full_caching_bitwise() {
    // §3.5: rebuilt activations are bit-identical, so training with
    // recomputation produces exactly the same losses and weights.
    let cfg = tiny(2);
    let mut rng = rand::rngs::StdRng::seed_from_u64(61);
    let master = GptModel::new(cfg, &mut rng);
    let data = make_data(cfg, 8, 3, 37);
    let mut spec = PtdpSpec::new(2, 2, 1);
    spec.microbatch = 2;
    let full = PtdpTrainer::new(master.clone(), spec).train(&data);
    spec.recompute = true;
    let rc = PtdpTrainer::new(master, spec).train(&data);
    assert_eq!(full.losses, rc.losses, "losses must be bit-identical");
    for (k, v) in &full.final_params {
        assert_eq!(v, &rc.final_params[k], "weights diverged at {k:?}");
    }
    // And the stash peak must be much smaller with recomputation.
    for (k, &full_peak) in &full.peak_stash_floats {
        let rc_peak = rc.peak_stash_floats[k];
        assert!(
            rc_peak * 3 < full_peak,
            "thread {k:?}: recompute peak {rc_peak} vs full {full_peak}"
        );
    }
}

#[test]
fn gpipe_stashes_more_than_1f1b() {
    // §2.2.1's memory claim, measured on the real engine: GPipe keeps
    // activations for all m microbatches, 1F1B for at most p.
    let cfg = tiny(2);
    let mut rng = rand::rngs::StdRng::seed_from_u64(71);
    let master = GptModel::new(cfg, &mut rng);
    let data = make_data(cfg, 8, 1, 43); // m = 8 microbatches
    let mut spec = PtdpSpec::new(2, 1, 1);
    spec.microbatch = 1;
    spec.schedule = ScheduleKind::GPipe;
    let gpipe = PtdpTrainer::new(master.clone(), spec).train(&data);
    spec.schedule = ScheduleKind::OneFOneB;
    let f1b1 = PtdpTrainer::new(master, spec).train(&data);
    // Device 0 under GPipe holds all 8; under 1F1B at most p = 2.
    let g0 = gpipe.peak_stash_floats[&(0, 0, 0)];
    let f0 = f1b1.peak_stash_floats[&(0, 0, 0)];
    assert!(
        g0 >= 3 * f0,
        "GPipe peak {g0} should far exceed 1F1B peak {f0}"
    );
}

#[test]
fn comm_op_tape_accounts_for_all_bytes() {
    // The replayable tape is complete: rebuilding every recorded
    // collective's step program and adding the recorded p2p sends
    // reproduces the transport-measured byte totals exactly, for every
    // thread of a full (2,2,2) run.
    let cfg = tiny(2);
    let mut rng = rand::rngs::StdRng::seed_from_u64(83);
    let master = GptModel::new(cfg, &mut rng);
    let data = make_data(cfg, 8, 2, 47);
    let mut spec = PtdpSpec::new(2, 2, 2);
    spec.microbatch = 1;
    let log = PtdpTrainer::new(master, spec).train(&data);
    assert_eq!(log.comm_ops.len(), spec.world());
    for (key @ (_, di, ti), ops) in &log.comm_ops {
        let measured = log.comm_volumes[key].total_bytes();
        let replayed = ops.total_bytes(spec.tensor, *ti, spec.data, *di);
        assert_eq!(replayed, measured, "thread {key:?} tape incomplete");
    }
}

/// Kill a rank mid-iteration, grab the last full checkpoint, resume,
/// and demand the resumed run lands bit-identically on an
/// uninterrupted one.
fn kill_and_restart_bitwise(cfg: TinyGptConfig, spec: PtdpSpec, batch: usize) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(123);
    let master = GptModel::new(cfg, &mut rng);
    let data = make_data(cfg, batch, 6, 91);

    // Run A: uninterrupted reference.
    let a = PtdpTrainer::new(master.clone(), spec).train(&data);
    for v in a.step_times.values() {
        assert_eq!(v.len(), 6, "every thread times every iteration");
        let iters: Vec<usize> = v.iter().map(|s| s.iteration).collect();
        assert_eq!(iters, vec![0, 1, 2, 3, 4, 5]);
        assert!(v.iter().all(|s| s.epoch == 0));
    }

    // Run B: checkpoint every 2 iterations, kill a rank during iter 4.
    let ctl = RunControl {
        checkpoint_every: Some(2),
        kill: Some(KillSwitch {
            thread: (0, 0, 0),
            iteration: 4,
        }),
        comm_timeout: Some(Duration::from_secs(5)),
        ..Default::default()
    };
    let b = PtdpTrainer::new(master.clone(), spec).train_with(&data, ctl);
    assert_eq!(b.error, Some(TrainError::Killed((0, 0, 0))));
    let snap = b.snapshot.expect("a checkpoint completed before the kill");
    assert_eq!(snap.next_iter, 4, "latest full checkpoint is after iter 3");
    assert_eq!(snap.threads.len(), spec.world());

    // Run C: resume from the snapshot, tagged as incident epoch 1.
    let resume_iter = snap.next_iter;
    let ctl = RunControl {
        restore: Some(snap),
        epoch: 1,
        ..Default::default()
    };
    let c = PtdpTrainer::new(master, spec).train_with(&data, ctl);
    assert!(c.error.is_none(), "resume failed: {:?}", c.error);
    // Satellite fix: step samples keep iteration identity across a
    // restart, so the resumed run's timings can't be confused with the
    // pre-kill attempt's.
    for v in c.log.step_times.values() {
        assert!(!v.is_empty());
        assert!(v.iter().all(|s| s.epoch == 1 && s.iteration >= resume_iter));
    }
    assert_eq!(a.final_params.len(), c.log.final_params.len());
    for (k, v) in &a.final_params {
        assert_eq!(
            v, &c.log.final_params[k],
            "thread {k:?} weights not bit-identical after resume"
        );
    }
    assert_eq!(
        a.losses[4..],
        c.log.losses[4..],
        "resumed-iteration losses must be bit-identical"
    );
}

#[test]
fn kill_and_restart_1f1b() {
    let mut spec = PtdpSpec::new(2, 2, 1);
    spec.microbatch = 1;
    kill_and_restart_bitwise(tiny(2), spec, 4);
}

#[test]
fn kill_and_restart_gpipe() {
    let mut spec = PtdpSpec::new(2, 1, 2);
    spec.schedule = ScheduleKind::GPipe;
    spec.microbatch = 1;
    kill_and_restart_bitwise(tiny(2), spec, 4);
}

#[test]
fn kill_and_restart_interleaved() {
    let mut spec = PtdpSpec::new(2, 1, 1);
    spec.chunks = 2;
    spec.schedule = ScheduleKind::Interleaved { chunks: 2 };
    spec.microbatch = 1;
    kill_and_restart_bitwise(tiny(4), spec, 4);
}

#[test]
fn restore_missing_thread_state_errors() {
    let cfg = tiny(2);
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let master = GptModel::new(cfg, &mut rng);
    let data = make_data(cfg, 4, 2, 11);
    let mut spec = PtdpSpec::new(2, 1, 1);
    spec.microbatch = 1;
    let ctl = RunControl {
        restore: Some(TrainSnapshot {
            next_iter: 1,
            threads: HashMap::new(),
        }),
        comm_timeout: Some(Duration::from_millis(200)),
        ..Default::default()
    };
    let out = PtdpTrainer::new(master, spec).train_with(&data, ctl);
    assert!(
        matches!(out.error, Some(TrainError::MissingThreadState(_))),
        "got {:?}",
        out.error
    );
}

#[test]
#[should_panic(expected = "layers must divide")]
fn rejects_uneven_layer_split() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let master = GptModel::new(tiny(3), &mut rng);
    PtdpTrainer::new(master, PtdpSpec::new(2, 1, 1));
}

#[test]
#[should_panic(expected = "must divide by d·b")]
fn rejects_indivisible_batch() {
    let cfg = tiny(2);
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let master = GptModel::new(cfg, &mut rng);
    let data = make_data(cfg, 3, 1, 5);
    let mut spec = PtdpSpec::new(1, 1, 2);
    spec.microbatch = 1;
    PtdpTrainer::new(master, spec).train(&data);
}
