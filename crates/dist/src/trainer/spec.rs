//! The parallelization plan: how many ways to split the model and batch,
//! which pipeline schedule to run, and the optimizer/memory knobs.

use std::time::Duration;

use megatron_schedule::ScheduleKind;

use crate::comm::DEFAULT_COMM_TIMEOUT;

/// Thread coordinate `(pipeline, data, tensor)`.
pub type ThreadKey = (usize, usize, usize);

/// Parallelization plan for [`PtdpTrainer`](crate::trainer::PtdpTrainer).
#[derive(Debug, Clone, Copy)]
pub struct PtdpSpec {
    /// Pipeline-parallel size `p`.
    pub pipeline: usize,
    /// Tensor-parallel size `t`.
    pub tensor: usize,
    /// Data-parallel size `d`.
    pub data: usize,
    /// Model chunks per device `v` (1 = non-interleaved).
    pub chunks: usize,
    /// Microbatch size `b` (samples).
    pub microbatch: usize,
    /// Pipeline schedule.
    pub schedule: ScheduleKind,
    /// Adam learning rate.
    pub lr: f32,
    /// Shard optimizer state across data-parallel ranks (the "sharded data
    /// parallelism" of the paper's related work / ZeRO stage 1): gradients
    /// arrive by reduce-scatter, each rank Adam-steps its 1/d slice, and
    /// updated parameters return by all-gather. Numerically identical to
    /// replicated Adam; optimizer memory drops by d.
    pub shard_optimizer: bool,
    /// §3.5 activation recomputation: stash only each chunk's input during
    /// the forward pass and rerun the forward just before the backward.
    /// Numerically identical (the rebuilt caches are bit-equal); activation
    /// memory drops from full per-layer caches to one input tensor.
    pub recompute: bool,
    /// Shard the token-embedding table and LM head over the vocabulary
    /// dimension across the tensor group (Megatron's layout), with the
    /// distributed cross-entropy that never materializes full logits.
    pub vocab_parallel: bool,
    /// Collective timeout for every process group of a run under this
    /// spec. [`RunControl::comm_timeout`](crate::trainer::RunControl) can
    /// override it per run (the supervisor shortens it on retry attempts
    /// so repeat failures are detected faster).
    pub comm_timeout: Duration,
}

impl PtdpSpec {
    /// A (p, t, d) spec with 1F1B, no interleaving, microbatch 1.
    pub fn new(pipeline: usize, tensor: usize, data: usize) -> Self {
        PtdpSpec {
            pipeline,
            tensor,
            data,
            chunks: 1,
            microbatch: 1,
            schedule: ScheduleKind::OneFOneB,
            lr: 0.01,
            shard_optimizer: false,
            recompute: false,
            vocab_parallel: false,
            comm_timeout: DEFAULT_COMM_TIMEOUT,
        }
    }

    /// Total threads.
    pub fn world(&self) -> usize {
        self.pipeline * self.tensor * self.data
    }

    /// The thread coordinate of a flat rank index, in the trainer's spawn
    /// order: pipeline outermost, then data, tensor innermost.
    pub fn thread_key(&self, rank: usize) -> ThreadKey {
        assert!(rank < self.world(), "rank {rank} out of range");
        let ti = rank % self.tensor;
        let di = (rank / self.tensor) % self.data;
        let pi = rank / (self.tensor * self.data);
        (pi, di, ti)
    }

    /// Inverse of [`PtdpSpec::thread_key`]: the flat rank index of a
    /// thread coordinate under this spec. The elastic supervisor uses it
    /// to carry fault-injection points across a topology change (a kill
    /// aimed at a rank of the old world maps to `flat % new_world`).
    pub fn flat_rank(&self, key: ThreadKey) -> usize {
        let (pi, di, ti) = key;
        assert!(
            pi < self.pipeline && di < self.data && ti < self.tensor,
            "thread {key:?} out of range for ({}, {}, {})",
            self.pipeline,
            self.tensor,
            self.data
        );
        pi * (self.data * self.tensor) + di * self.tensor + ti
    }
}
