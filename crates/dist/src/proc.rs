//! **Process mode**: run a `(p, t, d)` job as `p·t·d` real OS processes
//! over the socket transport (Unix-domain by default, TCP loopback on
//! request) instead of `p·t·d` threads over in-process mailboxes.
//!
//! The launcher ([`launch`]) forks/execs one worker per flat rank
//! (re-invoking the current executable with `--proc-worker <dir> <rank>`),
//! after writing the serialized [`JobSpec`] and its own heartbeat address
//! into a rendezvous directory. Each worker binds its own
//! [`SocketNode`], publishes `rank-R.addr` / `rank-R.pid` files
//! (atomically: write-temp + rename), waits for every peer's address, and
//! then runs the *unmodified* per-thread training loop
//! ([`run_thread`](crate::trainer)) — its tensor and data groups are
//! process-mode [`Group`]s over [`SocketChannel`]s, and its pipeline
//! endpoints are fed by pump threads that bridge socket frames to the
//! `mpsc` channels the worker already speaks.
//!
//! Determinism is the whole point: the collectives execute the exact same
//! step programs with the exact same chunk routing as the mailbox
//! transport, and the p2p pumps forward activations byte-for-byte, so an
//! N-process run produces **bit-identical** losses, final parameters, and
//! per-rank byte counts to the in-process run (proven in
//! `tests/process_mode.rs`). Results cross the process boundary through
//! `rank-R.out.json` files that encode every `f32` as its `u32` bit
//! pattern — no decimal round-trip.
//!
//! ## Channel-id map
//!
//! Every logical communicator gets a stable channel id, so one listener
//! per process serves all of them:
//!
//! | id | communicator |
//! |----|--------------|
//! | `1000 + pi·d + di` | tensor group of `(pi, di)`, members `ti ∈ 0..t` |
//! | `2000 + pi·t + ti` | data group of `(pi, ti)`, members `di ∈ 0..d` |
//! | `3000 + 2·s + dir` | pipeline boundary `s` lane (2 ranks: sender 0, receiver 1) |
//! | `4000` | heartbeats (`world + 1` ranks; the launcher is rank `world`) |
//!
//! ## Failure semantics
//!
//! A dead peer *process* cannot be poisoned (no shared memory), so every
//! stall surfaces as [`CommError::Timeout`](crate::comm::CommError) after
//! the group timeout — with the peer's **pid and socket address** attached
//! to the [`StallContext`](crate::comm::StallContext). Pipeline pumps use
//! the same convention: a receive pump that sees no frame for the comm
//! timeout assumes its stage neighbor died and hangs up, which the worker
//! observes as `PipelineBroken`. Liveness is tracked out-of-band: each
//! worker runs a beacon thread that sends a 1-element heartbeat frame to
//! the launcher every [`JobSpec::hb_period`], and the per-iteration
//! [`RunControl::on_beat`](crate::trainer::RunControl) hook beats too, so
//! the launcher's [`HealthMonitor`] classifies a SIGKILLed rank as dead
//! while stalled survivors keep beating.

use std::collections::HashMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Child, Command};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel as unbounded, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use megatron_collective::{SocketChannel, SocketNode, WireAddr};
use megatron_schedule::ScheduleKind;
use megatron_sim::json::Json;
use megatron_tensor::gpt::{GptModel, TinyGptConfig};
use megatron_tensor::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::checkpoint::CheckpointStore;
use crate::comm::{CommVolume, Group, TransportConfig, WireKind};
use crate::health::HealthMonitor;
use crate::supervisor::{CapacityEvent, Reconfiguration, ReconfigureDirection};
use crate::trainer::{
    classify_panic, run_thread, Endpoints, PtdpSpec, RankCommOps, RankCommVolume, RunControl,
    SharedMap, StepSample, ThreadArgs, ThreadKey, ThreadState,
};

const TENSOR_CHAN_BASE: u64 = 1000;
const DATA_CHAN_BASE: u64 = 2000;
const P2P_CHAN_BASE: u64 = 3000;
const HEARTBEAT_CHAN: u64 = 4000;

/// How long a worker waits for every peer's address file to appear.
const RENDEZVOUS_TIMEOUT: Duration = Duration::from_secs(30);

/// A self-contained, serializable description of one process-mode job:
/// the parallelization plan plus everything each worker needs to rebuild
/// identical inputs — model architecture, init/data seeds, batch size and
/// iteration count — so no tensor ever crosses the process boundary at
/// startup.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobSpec {
    /// Pipeline-parallel size `p`.
    pub pipeline: usize,
    /// Tensor-parallel size `t`.
    pub tensor: usize,
    /// Data-parallel size `d`.
    pub data: usize,
    /// Model chunks per device `v`.
    pub chunks: usize,
    /// Microbatch size `b`.
    pub microbatch: usize,
    /// Pipeline schedule.
    pub schedule: ScheduleKind,
    /// Adam learning rate.
    pub lr: f32,
    /// ZeRO-1 optimizer sharding.
    pub shard_optimizer: bool,
    /// §3.5 activation recomputation.
    pub recompute: bool,
    /// Vocab-parallel embedding + LM head.
    pub vocab_parallel: bool,
    /// Collective (and pipeline-pump) timeout.
    pub comm_timeout: Duration,
    /// Model architecture; every worker rebuilds the same master.
    pub model: TinyGptConfig,
    /// Seed for master-weight initialization.
    pub model_seed: u64,
    /// Seed for the synthetic token stream.
    pub data_seed: u64,
    /// Global batch size (samples per iteration).
    pub batch: usize,
    /// Training iterations.
    pub iters: usize,
    /// Socket flavor: must be [`WireKind::Uds`] or [`WireKind::Tcp`].
    pub wire: WireKind,
    /// Arm the reliable retry layer on every group.
    pub retry: bool,
    /// Write a per-rank Chrome trace (`rank-R.trace.json`).
    pub trace: bool,
    /// Heartbeat beacon period.
    pub hb_period: Duration,
    /// Durable checkpoint cadence in iterations (0 = no checkpointing).
    /// Workers write their own shards; the launcher commits complete
    /// generations (see [`CheckpointStore::commit_complete_generations`]).
    pub checkpoint_every: usize,
    /// Restore from this durable generation before training (0 = fresh
    /// start). The launcher pins the generation — rather than letting each
    /// worker pick "latest" independently — so every rank of a respawned
    /// attempt restores the *same* state even if a newer generation
    /// commits concurrently.
    pub resume_from: usize,
    /// Incident epoch stamped into step samples and telemetry (attempt
    /// number − 1 under the supervisor; 0 for a plain launch).
    pub epoch: usize,
}

impl JobSpec {
    /// The canonical seeded tiny job (the same model, seeds, batch, and
    /// iteration count as `tests/real_vs_sim_bytes.rs`), over UDS.
    pub fn canonical(pipeline: usize, tensor: usize, data: usize) -> JobSpec {
        let spec = PtdpSpec::new(pipeline, tensor, data);
        JobSpec {
            pipeline,
            tensor,
            data,
            chunks: spec.chunks,
            microbatch: spec.microbatch,
            schedule: spec.schedule,
            lr: spec.lr,
            shard_optimizer: spec.shard_optimizer,
            recompute: spec.recompute,
            vocab_parallel: spec.vocab_parallel,
            comm_timeout: spec.comm_timeout,
            model: TinyGptConfig {
                vocab: 13,
                seq: 6,
                hidden: 8,
                heads: 4,
                layers: 2,
            },
            model_seed: 7,
            data_seed: 11,
            batch: 8,
            iters: 2,
            wire: WireKind::Uds,
            retry: false,
            trace: false,
            hb_period: Duration::from_millis(25),
            checkpoint_every: 0,
            resume_from: 0,
            epoch: 0,
        }
    }

    /// The equivalent in-process parallelization plan.
    pub fn spec(&self) -> PtdpSpec {
        let mut s = PtdpSpec::new(self.pipeline, self.tensor, self.data);
        s.chunks = self.chunks;
        s.microbatch = self.microbatch;
        s.schedule = self.schedule;
        s.lr = self.lr;
        s.shard_optimizer = self.shard_optimizer;
        s.recompute = self.recompute;
        s.vocab_parallel = self.vocab_parallel;
        s.comm_timeout = self.comm_timeout;
        s
    }

    /// Total worker processes.
    pub fn world(&self) -> usize {
        self.pipeline * self.tensor * self.data
    }

    /// Rebuild the master model every worker starts from.
    pub fn master(&self) -> GptModel {
        let mut rng = StdRng::seed_from_u64(self.model_seed);
        GptModel::new(self.model, &mut rng)
    }

    /// Rebuild the synthetic dataset (identical in every process).
    pub fn dataset(&self) -> Vec<(Vec<usize>, Vec<usize>)> {
        let mut rng = StdRng::seed_from_u64(self.data_seed);
        (0..self.iters)
            .map(|_| {
                let toks: Vec<usize> = (0..self.batch * self.model.seq)
                    .map(|_| rng.gen_range(0..self.model.vocab))
                    .collect();
                let tgts: Vec<usize> = (0..self.batch * self.model.seq)
                    .map(|_| rng.gen_range(0..self.model.vocab))
                    .collect();
                (toks, tgts)
            })
            .collect()
    }

    /// The transport config every worker arms its groups with.
    pub fn transport(&self) -> TransportConfig {
        TransportConfig {
            wire: self.wire,
            retry: self.retry.then(Default::default),
            faults: None,
        }
    }

    /// Serialize to the `job.json` wire form. `f32` fields travel as
    /// their `u32` bit patterns so the round trip is exact.
    pub fn to_json(&self) -> String {
        let n = |x: usize| Json::Num(x as f64);
        let schedule = match self.schedule {
            ScheduleKind::GPipe => "gpipe".to_string(),
            ScheduleKind::OneFOneB => "1f1b".to_string(),
            ScheduleKind::Interleaved { chunks } => format!("interleaved:{chunks}"),
        };
        Json::obj([
            ("p", n(self.pipeline)),
            ("t", n(self.tensor)),
            ("d", n(self.data)),
            ("chunks", n(self.chunks)),
            ("microbatch", n(self.microbatch)),
            ("schedule", Json::Str(schedule)),
            ("lr_bits", Json::Num(self.lr.to_bits() as f64)),
            ("shard_optimizer", Json::Bool(self.shard_optimizer)),
            ("recompute", Json::Bool(self.recompute)),
            ("vocab_parallel", Json::Bool(self.vocab_parallel)),
            (
                "comm_timeout_ms",
                Json::Num(self.comm_timeout.as_millis() as f64),
            ),
            ("vocab", n(self.model.vocab)),
            ("seq", n(self.model.seq)),
            ("hidden", n(self.model.hidden)),
            ("heads", n(self.model.heads)),
            ("layers", n(self.model.layers)),
            ("model_seed", Json::Num(self.model_seed as f64)),
            ("data_seed", Json::Num(self.data_seed as f64)),
            ("batch", n(self.batch)),
            ("iters", n(self.iters)),
            (
                "wire",
                Json::Str(
                    match self.wire {
                        WireKind::Mailbox => "mailbox",
                        WireKind::Uds => "uds",
                        WireKind::Tcp => "tcp",
                    }
                    .to_string(),
                ),
            ),
            ("retry", Json::Bool(self.retry)),
            ("trace", Json::Bool(self.trace)),
            ("hb_period_ms", Json::Num(self.hb_period.as_millis() as f64)),
            ("checkpoint_every", n(self.checkpoint_every)),
            ("resume_from", n(self.resume_from)),
            ("epoch", n(self.epoch)),
        ])
        .to_string()
    }

    /// Parse the `job.json` wire form.
    pub fn from_json(text: &str) -> Result<JobSpec, String> {
        let j = Json::parse(text).map_err(|e| e.to_string())?;
        let us = |k: &str| -> Result<usize, String> {
            j.get(k)
                .as_f64()
                .map(|v| v as usize)
                .ok_or_else(|| format!("job.json: missing numeric field `{k}`"))
        };
        // Fields added after PR 9 default to zero so older job.json files
        // (and hand-written ones) still parse.
        let us0 = |k: &str| j.get(k).as_f64().map(|v| v as usize).unwrap_or(0);
        let b = |k: &str| matches!(j.get(k), Json::Bool(true));
        let schedule = match j.get("schedule").as_str().unwrap_or("1f1b") {
            "gpipe" => ScheduleKind::GPipe,
            s if s.starts_with("interleaved:") => ScheduleKind::Interleaved {
                chunks: s["interleaved:".len()..]
                    .parse()
                    .map_err(|_| format!("job.json: bad schedule `{s}`"))?,
            },
            _ => ScheduleKind::OneFOneB,
        };
        let wire = match j.get("wire").as_str().unwrap_or("uds") {
            "tcp" => WireKind::Tcp,
            "mailbox" => WireKind::Mailbox,
            _ => WireKind::Uds,
        };
        Ok(JobSpec {
            pipeline: us("p")?,
            tensor: us("t")?,
            data: us("d")?,
            chunks: us("chunks")?,
            microbatch: us("microbatch")?,
            schedule,
            lr: f32::from_bits(us("lr_bits")? as u32),
            shard_optimizer: b("shard_optimizer"),
            recompute: b("recompute"),
            vocab_parallel: b("vocab_parallel"),
            comm_timeout: Duration::from_millis(us("comm_timeout_ms")? as u64),
            model: TinyGptConfig {
                vocab: us("vocab")?,
                seq: us("seq")?,
                hidden: us("hidden")?,
                heads: us("heads")?,
                layers: us("layers")?,
            },
            model_seed: us("model_seed")? as u64,
            data_seed: us("data_seed")? as u64,
            batch: us("batch")?,
            iters: us("iters")?,
            wire,
            retry: b("retry"),
            trace: b("trace"),
            hb_period: Duration::from_millis(us("hb_period_ms")? as u64),
            checkpoint_every: us0("checkpoint_every"),
            resume_from: us0("resume_from"),
            epoch: us0("epoch"),
        })
    }
}

// ---------------------------------------------------------------------------
// Socket fault plan
// ---------------------------------------------------------------------------

/// Which of a rank's group channels a socket fault targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultChan {
    /// The rank's tensor-parallel group channel.
    Tensor,
    /// The rank's data-parallel group channel.
    Data,
}

/// One launcher-injected socket-level fault, executed by the worker it
/// names before training starts. Severs and slowdowns act on the rank's
/// outbound connection toward its next ring neighbor in the chosen group
/// (the edge every ring collective uses each iteration), so the fault is
/// guaranteed to sit on a live traffic path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SocketFault {
    /// Cut the connection mid-frame once `after_bytes` cumulative payload
    /// bytes have been written. `lossy` drops the severed frame cold —
    /// recovery is then entirely the reliable layer + replay log's job —
    /// while `!lossy` has the socket layer resend it whole.
    Sever {
        /// Flat rank whose outbound connection is cut.
        rank: usize,
        /// Group channel carrying the fault.
        chan: FaultChan,
        /// Payload bytes before the cut.
        after_bytes: u64,
        /// Genuinely lose the severed frame?
        lossy: bool,
    },
    /// Delay the rank's listener bind (and address publish) by `delay_ms`:
    /// every peer that dials early is refused and must retry, exercising
    /// the connect-retry path from the other side of the pipe.
    Refuse {
        /// Flat rank whose listener comes up late.
        rank: usize,
        /// Milliseconds of bind delay.
        delay_ms: u64,
    },
    /// Slow every frame the rank sends on `chan` by `delay_us` — a
    /// degraded link the health monitor should classify as Slow, not
    /// Dead.
    Slow {
        /// Flat rank with the degraded link.
        rank: usize,
        /// Group channel carrying the fault.
        chan: FaultChan,
        /// Per-frame send delay in microseconds.
        delay_us: u64,
    },
}

/// A seeded schedule of socket faults for one process-mode job, written
/// by the launcher as `faults.json` and read by every worker at startup
/// (each applies only the entries naming its own rank). The process-mode
/// analog of `TransientFaults`: these are *wire* faults — broken pipes,
/// refused connections, slow links — across real address spaces.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SocketFaultPlan {
    /// The faults, in no particular order.
    pub faults: Vec<SocketFault>,
}

impl SocketFaultPlan {
    /// A deterministic plan for a world of `world` ranks: one lossy
    /// mid-frame sever, one refused-connection startup delay, and one
    /// slow link, on ranks drawn from `seed`. The sever's byte offset is
    /// drawn so it lands inside the first few iterations' traffic.
    pub fn seeded(seed: u64, world: usize) -> SocketFaultPlan {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x50c4_e7fa);
        let mut pick = |exclude: &[usize]| loop {
            let r = rng.gen_range(0..world);
            if !exclude.contains(&r) {
                return r;
            }
        };
        let a = pick(&[]);
        let b = pick(&[a]);
        let c = pick(&[a, b]);
        let after_bytes = rng.gen_range(100..600);
        let faults = vec![
            SocketFault::Sever {
                rank: a,
                chan: FaultChan::Tensor,
                after_bytes,
                lossy: true,
            },
            SocketFault::Refuse {
                rank: b,
                delay_ms: rng.gen_range(20..120),
            },
            SocketFault::Slow {
                rank: c,
                chan: FaultChan::Data,
                delay_us: rng.gen_range(100..800),
            },
        ];
        SocketFaultPlan { faults }
    }

    /// The entries that name `rank`.
    pub fn for_rank(&self, rank: usize) -> Vec<SocketFault> {
        self.faults
            .iter()
            .copied()
            .filter(|f| match f {
                SocketFault::Sever { rank: r, .. }
                | SocketFault::Refuse { rank: r, .. }
                | SocketFault::Slow { rank: r, .. } => *r == rank,
            })
            .collect()
    }

    /// Serialize to the `faults.json` wire form.
    pub fn to_json(&self) -> String {
        let chan = |c: FaultChan| {
            Json::Str(
                match c {
                    FaultChan::Tensor => "tensor",
                    FaultChan::Data => "data",
                }
                .to_string(),
            )
        };
        let n = |x: u64| Json::Num(x as f64);
        Json::obj([(
            "faults",
            Json::Arr(
                self.faults
                    .iter()
                    .map(|f| match *f {
                        SocketFault::Sever {
                            rank,
                            chan: c,
                            after_bytes,
                            lossy,
                        } => Json::obj([
                            ("kind", Json::Str("sever".into())),
                            ("rank", n(rank as u64)),
                            ("chan", chan(c)),
                            ("after_bytes", n(after_bytes)),
                            ("lossy", Json::Bool(lossy)),
                        ]),
                        SocketFault::Refuse { rank, delay_ms } => Json::obj([
                            ("kind", Json::Str("refuse".into())),
                            ("rank", n(rank as u64)),
                            ("delay_ms", n(delay_ms)),
                        ]),
                        SocketFault::Slow {
                            rank,
                            chan: c,
                            delay_us,
                        } => Json::obj([
                            ("kind", Json::Str("slow".into())),
                            ("rank", n(rank as u64)),
                            ("chan", chan(c)),
                            ("delay_us", n(delay_us)),
                        ]),
                    })
                    .collect(),
            ),
        )])
        .to_string()
    }

    /// Parse the `faults.json` wire form.
    pub fn from_json(text: &str) -> Result<SocketFaultPlan, String> {
        let j = Json::parse(text).map_err(|e| e.to_string())?;
        let arr = j
            .get("faults")
            .as_array()
            .ok_or("faults.json: missing `faults` array")?;
        let mut faults = Vec::with_capacity(arr.len());
        for f in arr {
            let rank = f.get("rank").as_f64().ok_or("fault: missing rank")? as usize;
            let chan = || match f.get("chan").as_str() {
                Some("data") => FaultChan::Data,
                _ => FaultChan::Tensor,
            };
            let u = |k: &str| f.get(k).as_f64().unwrap_or(0.0) as u64;
            faults.push(match f.get("kind").as_str() {
                Some("sever") => SocketFault::Sever {
                    rank,
                    chan: chan(),
                    after_bytes: u("after_bytes"),
                    lossy: matches!(f.get("lossy"), Json::Bool(true)),
                },
                Some("refuse") => SocketFault::Refuse {
                    rank,
                    delay_ms: u("delay_ms"),
                },
                Some("slow") => SocketFault::Slow {
                    rank,
                    chan: chan(),
                    delay_us: u("delay_us"),
                },
                k => return Err(format!("fault: unknown kind {k:?}")),
            });
        }
        Ok(SocketFaultPlan { faults })
    }
}

// ---------------------------------------------------------------------------
// Rendezvous files
// ---------------------------------------------------------------------------

/// Atomically publish a rendezvous file: write `name.tmp`, then rename.
/// Readers polling the directory never observe a torn write.
fn publish(dir: &Path, name: &str, contents: &str) {
    let tmp = dir.join(format!("{name}.tmp"));
    fs::write(&tmp, contents).expect("write rendezvous file");
    fs::rename(&tmp, dir.join(name)).expect("rename rendezvous file");
}

fn read_addr(dir: &Path, name: &str) -> Option<WireAddr> {
    let text = fs::read_to_string(dir.join(name)).ok()?;
    WireAddr::parse(text.trim())
}

/// Poll until every worker's `rank-R.addr` exists, returning the flat-rank
/// edge map.
fn await_addrs(dir: &Path, world: usize, deadline: Instant) -> Result<Vec<WireAddr>, String> {
    let mut addrs: Vec<Option<WireAddr>> = vec![None; world];
    loop {
        for (r, slot) in addrs.iter_mut().enumerate() {
            if slot.is_none() {
                *slot = read_addr(dir, &format!("rank-{r}.addr"));
            }
        }
        if addrs.iter().all(|a| a.is_some()) {
            return Ok(addrs.into_iter().map(|a| a.unwrap()).collect());
        }
        if Instant::now() >= deadline {
            let missing: Vec<usize> = addrs
                .iter()
                .enumerate()
                .filter(|(_, a)| a.is_none())
                .map(|(r, _)| r)
                .collect();
            return Err(format!(
                "rendezvous timed out waiting for ranks {missing:?}"
            ));
        }
        thread::sleep(Duration::from_millis(2));
    }
}

// ---------------------------------------------------------------------------
// Pipeline p2p pumps
// ---------------------------------------------------------------------------

/// Matrix wire frame: `[rows, cols, data…]` as f32 (dimensions are exact
/// below 2²⁴). Serialization is lossless, so pumped activations are
/// bit-identical to in-process channel sends.
fn matrix_frame(m: &Matrix) -> Vec<f32> {
    let mut frame = Vec::with_capacity(m.rows() * m.cols() + 2);
    frame.push(m.rows() as f32);
    frame.push(m.cols() as f32);
    frame.extend_from_slice(m.as_slice());
    frame
}

fn frame_matrix(frame: &[f32]) -> Option<Matrix> {
    let (rows, cols) = (*frame.first()? as usize, *frame.get(1)? as usize);
    if frame.len() != rows * cols + 2 {
        return None;
    }
    Some(Matrix::from_vec(rows, cols, frame[2..].to_vec()))
}

/// Forward matrices from the worker's `mpsc` sender into the socket lane.
/// Exits when the worker drops its sender (normal completion) or a send
/// fails; the dropped receiver then surfaces to the worker as
/// `PipelineBroken` on its next send.
fn pump_send(mut chan: SocketChannel, rx: Receiver<Matrix>, timeout: Duration) {
    for m in rx {
        chan.set_deadline(Instant::now() + timeout);
        if megatron_collective::Transport::send(&mut chan, 1, &matrix_frame(&m)).is_err() {
            return;
        }
    }
}

/// Forward socket frames into the worker's `mpsc` receiver. Hangs up —
/// dropping the sender, which the worker observes as `PipelineBroken` —
/// after `timeout` of silence (the same dead-peer convention as group
/// collectives) or when `stop` is raised after the worker exits.
fn pump_recv(
    mut chan: SocketChannel,
    tx: Sender<Matrix>,
    stop: Arc<AtomicBool>,
    timeout: Duration,
) {
    let mut last_frame = Instant::now();
    while !stop.load(Ordering::Relaxed) {
        chan.set_deadline(Instant::now() + Duration::from_millis(200));
        match megatron_collective::PollTransport::recv_within(
            &mut chan,
            0,
            Duration::from_millis(50),
        ) {
            Ok(Some(frame)) => {
                last_frame = Instant::now();
                let Some(m) = frame_matrix(&frame) else {
                    return;
                };
                if tx.send(m).is_err() {
                    return;
                }
            }
            Ok(None) | Err(_) => {
                if last_frame.elapsed() > timeout {
                    return;
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Worker process
// ---------------------------------------------------------------------------

/// If the process was invoked as a rank worker (`--proc-worker <dir>
/// <rank>` anywhere in argv), run the worker to completion and exit.
/// Call this first thing in any binary that hosts [`launch`] — the
/// launcher re-execs the current executable with these arguments.
pub fn maybe_worker() {
    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--proc-worker") {
        if args.len() > i + 2 {
            let dir = PathBuf::from(&args[i + 1]);
            let rank: usize = args[i + 2].parse().expect("--proc-worker rank");
            std::process::exit(worker_main(&dir, rank));
        }
    }
}

/// The body of one rank process: bind, rendezvous, train, report.
/// Returns the process exit code (0 = the rank finished its run).
pub fn worker_main(dir: &Path, rank: usize) -> i32 {
    let job = match fs::read_to_string(dir.join("job.json"))
        .map_err(|e| e.to_string())
        .and_then(|s| JobSpec::from_json(&s))
    {
        Ok(j) => j,
        Err(e) => {
            eprintln!("rank {rank}: {e}");
            return 3;
        }
    };
    assert!(job.wire.is_socket(), "process mode needs a socket wire");
    let spec = job.spec();
    let world = spec.world();
    let (pi, di, ti) = spec.thread_key(rank);
    let (p, t, d, v) = (spec.pipeline, spec.tensor, spec.data, spec.chunks);
    let stages = p * v;
    let timeout = spec.comm_timeout;

    // Launcher-injected socket faults for this rank, if a plan was
    // published. A Refuse fault delays the bind below, so early-dialing
    // peers get genuine connection refusals and have to retry.
    let my_faults = fs::read_to_string(dir.join("faults.json"))
        .ok()
        .and_then(|s| SocketFaultPlan::from_json(&s).ok())
        .map(|p| p.for_rank(rank))
        .unwrap_or_default();
    for f in &my_faults {
        if let SocketFault::Refuse { delay_ms, .. } = f {
            thread::sleep(Duration::from_millis(*delay_ms));
        }
    }
    let arm = |chan: &mut SocketChannel, which: FaultChan| {
        for f in &my_faults {
            match *f {
                SocketFault::Sever {
                    chan: c,
                    after_bytes,
                    lossy,
                    ..
                } if c == which => {
                    let size = if which == FaultChan::Tensor { t } else { d };
                    if size > 1 {
                        let to = (chan.rank() + 1) % size;
                        if lossy {
                            chan.sever_outbound_after_lossy(to, after_bytes);
                        } else {
                            chan.sever_outbound_after(to, after_bytes);
                        }
                    }
                }
                SocketFault::Slow {
                    chan: c, delay_us, ..
                } if c == which => {
                    chan.set_send_delay(Some(Duration::from_micros(delay_us)));
                }
                _ => {}
            }
        }
    };

    // Bind our listener and advertise it. UDS socket files live in the
    // rendezvous dir; TCP binds an ephemeral loopback port and publishes
    // the actual one.
    let bind = match job.wire {
        WireKind::Tcp => WireAddr::Tcp("127.0.0.1:0".parse().unwrap()),
        _ => WireAddr::Uds(dir.join(format!("rank-{rank}.sock"))),
    };
    let node = Arc::new(SocketNode::bind(&bind).expect("bind rank listener"));
    publish(dir, &format!("rank-{rank}.addr"), &node.addr().to_string());
    publish(
        dir,
        &format!("rank-{rank}.pid"),
        &std::process::id().to_string(),
    );

    let deadline = Instant::now() + RENDEZVOUS_TIMEOUT;
    let addrs = match await_addrs(dir, world, deadline) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("rank {rank}: {e}");
            return 3;
        }
    };
    let launcher_addr = read_addr(dir, "launcher.addr");
    let transport = job.transport();

    // Group communicators: one socket channel per logical group, one
    // member (this process) per group.
    let flat = |pj: usize, dj: usize, tj: usize| spec.flat_rank((pj, dj, tj));
    let tg = {
        let chan_id = TENSOR_CHAN_BASE + (pi * d + di) as u64;
        let peers = (0..t)
            .map(|tj| Some(addrs[flat(pi, di, tj)].clone()))
            .collect();
        let mut chan = SocketChannel::new(Arc::clone(&node), chan_id, ti, peers);
        arm(&mut chan, FaultChan::Tensor);
        Group::with_socket(t, timeout, transport, chan).member(ti)
    };
    let dg = {
        let chan_id = DATA_CHAN_BASE + (pi * t + ti) as u64;
        let peers = (0..d)
            .map(|dj| Some(addrs[flat(pi, dj, ti)].clone()))
            .collect();
        let mut chan = SocketChannel::new(Arc::clone(&node), chan_id, di, peers);
        arm(&mut chan, FaultChan::Data);
        Group::with_socket(d, timeout, transport, chan).member(di)
    };

    // Pipeline lanes: for every stage boundary this device touches, a
    // dedicated 2-rank channel per direction (sender = lane rank 0) and a
    // pump thread bridging it to the mpsc endpoints the worker expects.
    let stop = Arc::new(AtomicBool::new(false));
    let mut pumps = Vec::new();
    let mut ep = Endpoints::default();
    for s in 0..stages.saturating_sub(1) {
        let from_dev = s % p;
        let to_dev = (s + 1) % p;
        // dir 0 = forward activations (from→to), 1 = backward gradients.
        for (dir, tx_dev, rx_dev) in [(0u64, from_dev, to_dev), (1u64, to_dev, from_dev)] {
            let chan_id = P2P_CHAN_BASE + (s as u64) * 2 + dir;
            if pi == tx_dev {
                let peers = vec![None, Some(addrs[flat(rx_dev, di, ti)].clone())];
                let chan = SocketChannel::new(Arc::clone(&node), chan_id, 0, peers);
                let (mtx, mrx) = unbounded::<Matrix>();
                if dir == 0 {
                    ep.fwd_out.insert(s, mtx);
                } else {
                    ep.bwd_out.insert(s + 1, mtx);
                }
                pumps.push(thread::spawn(move || pump_send(chan, mrx, timeout)));
            }
            if pi == rx_dev {
                let chan = SocketChannel::new(Arc::clone(&node), chan_id, 1, vec![None, None]);
                let (mtx, mrx) = unbounded::<Matrix>();
                if dir == 0 {
                    ep.fwd_in.insert(s + 1, mrx);
                } else {
                    ep.bwd_in.insert(s, mrx);
                }
                let stop = Arc::clone(&stop);
                pumps.push(thread::spawn(move || pump_recv(chan, mtx, stop, timeout)));
            }
        }
    }

    // Heartbeats: a channel of world+1 ranks whose last rank is the
    // launcher. A beacon thread pulses process liveness every hb_period
    // (independent of training progress, so stalled-but-alive survivors
    // keep beating), and the per-iteration on_beat hook pulses progress.
    let hb = launcher_addr.map(|la| {
        let mut peers: Vec<Option<WireAddr>> = vec![None; world + 1];
        peers[world] = Some(la);
        let chan = SocketChannel::new(Arc::clone(&node), HEARTBEAT_CHAN, rank, peers);
        Arc::new(Mutex::new(chan))
    });
    if let Some(hb) = &hb {
        let hb = Arc::clone(hb);
        let stop = Arc::clone(&stop);
        let period = job.hb_period;
        pumps.push(thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                if send_heartbeat(&hb, world, &[rank as f32]).is_err() {
                    return;
                }
                thread::sleep(period);
            }
        }));
    }

    // Telemetry: per-process sink; the trace file is merged by the
    // launcher side (`repro analyze --merge-traces`).
    let sink = job.trace.then(|| {
        megatron_telemetry::TelemetrySink::new(megatron_telemetry::SinkConfig {
            world,
            flops_per_iteration: 0.0,
            gpu: None,
        })
    });

    // Durable checkpointing: each worker writes only its own shard — the
    // launcher, which sees every rank's shards on disk, commits complete
    // generations. The store root crosses the attempt boundary (the
    // supervisor reuses one store over many rendezvous dirs) via the
    // `ckpt.path` rendezvous file.
    let store = (job.checkpoint_every > 0).then(|| {
        let root = fs::read_to_string(dir.join("ckpt.path"))
            .map(|s| PathBuf::from(s.trim()))
            .unwrap_or_else(|_| dir.join("ckpt"));
        crate::checkpoint::CheckpointStore::open(root).expect("open checkpoint store")
    });
    let restore = if job.resume_from > 0 {
        let Some(store) = &store else {
            eprintln!("rank {rank}: resume_from set without checkpointing");
            return 3;
        };
        // Restore the launcher-pinned generation *specifically*: restoring
        // whatever happens to be latest would silently diverge across the
        // ranks (and forbid replaying an older generation for audits).
        match store.load_pinned(&spec, job.model, job.resume_from) {
            Ok(r) => Some(r.snapshot),
            Err(e) => {
                eprintln!(
                    "rank {rank}: restore of pinned generation {} failed: {e}",
                    job.resume_from
                );
                return 3;
            }
        }
    } else {
        None
    };

    let ctl = RunControl {
        comm_timeout: Some(timeout),
        telemetry: sink.clone(),
        checkpoint_every: (job.checkpoint_every > 0).then_some(job.checkpoint_every),
        durable: store,
        restore,
        epoch: job.epoch,
        on_beat: hb.as_ref().map(|hb| {
            let hb = Arc::clone(hb);
            // Progress beats carry the rank's absolute completed-iteration
            // count in a second frame element; the launcher's kill
            // scheduler and the supervisor's grow boundary both key off
            // it. The plain beacon stays 1-element.
            let done = std::sync::atomic::AtomicUsize::new(job.resume_from);
            Arc::new(move |r: usize| {
                let completed = done.fetch_add(1, Ordering::Relaxed) + 1;
                let _ = send_heartbeat(&hb, world, &[r as f32, completed as f32]);
            }) as Arc<dyn Fn(usize) + Send + Sync>
        }),
        ..Default::default()
    };

    // The unmodified per-thread training loop, exactly as the in-process
    // trainer drives it — same ThreadArgs, same schedule, same seeds.
    let master = job.master();
    let dataset = job.dataset();
    let m = job.batch / d / spec.microbatch;
    let schedule = spec.schedule.build(p, m);
    let losses = Arc::new(Mutex::new(vec![0.0f32; job.iters]));
    let final_params: SharedMap<Vec<f32>> = Arc::new(Mutex::new(HashMap::new()));
    let peak_stash: SharedMap<usize> = Arc::new(Mutex::new(HashMap::new()));
    let step_times: SharedMap<Vec<StepSample>> = Arc::new(Mutex::new(HashMap::new()));
    let comm_volumes: SharedMap<RankCommVolume> = Arc::new(Mutex::new(HashMap::new()));
    let comm_ops: SharedMap<RankCommOps> = Arc::new(Mutex::new(HashMap::new()));
    let ckpts: Mutex<HashMap<usize, HashMap<ThreadKey, ThreadState>>> = Mutex::new(HashMap::new());

    let result: Result<(), crate::trainer::TrainError> = {
        let args = ThreadArgs {
            pi,
            di,
            ti,
            spec,
            master: &master,
            schedule: &schedule,
            data: &dataset,
            ep,
            tg,
            dg,
            losses: Arc::clone(&losses),
            final_params: Arc::clone(&final_params),
            peak_stash: Arc::clone(&peak_stash),
            step_times: Arc::clone(&step_times),
            comm_volumes: Arc::clone(&comm_volumes),
            comm_ops: Arc::clone(&comm_ops),
            ctl: &ctl,
            ckpts: &ckpts,
        };
        thread::scope(|s| {
            s.spawn(|| run_thread(args))
                .join()
                .unwrap_or_else(|e| Err(classify_panic(&e)))
        })
    };
    stop.store(true, Ordering::Relaxed);
    for h in pumps {
        let _ = h.join();
    }

    // Report: every f32 as u32 bits, so the launcher's merge is exact.
    let key = (pi, di, ti);
    let lock = |m: &SharedMap<Vec<f32>>| {
        m.lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(&key)
            .unwrap_or_default()
    };
    let vol = comm_volumes
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .remove(&key)
        .unwrap_or_default();
    let tape_bytes = comm_ops
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .remove(&key)
        .map(|ops| ops.total_bytes(t, ti, d, di))
        .unwrap_or(0.0);
    let peak = peak_stash
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .remove(&key)
        .unwrap_or(0);
    let steps = step_times
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .remove(&key)
        .map(|s| s.len())
        .unwrap_or(0);
    let losses = Arc::try_unwrap(losses)
        .unwrap()
        .into_inner()
        .unwrap_or_else(|e| e.into_inner());
    let doc = Json::obj([
        ("rank", Json::Num(rank as f64)),
        (
            "key",
            Json::Arr(vec![
                Json::Num(pi as f64),
                Json::Num(di as f64),
                Json::Num(ti as f64),
            ]),
        ),
        ("pid", Json::Num(std::process::id() as f64)),
        (
            "error",
            match &result {
                Ok(()) => Json::Null,
                Err(e) => Json::Str(e.to_string()),
            },
        ),
        ("losses_bits", bits_json(&losses)),
        ("params_bits", bits_json(&lock(&final_params))),
        ("volume", volume_json(&vol)),
        ("tape_bytes", Json::Num(tape_bytes)),
        ("peak_stash", Json::Num(peak as f64)),
        ("steps", Json::Num(steps as f64)),
    ]);
    publish(dir, &format!("rank-{rank}.out.json"), &doc.to_string());
    if let Some(sink) = &sink {
        publish(
            dir,
            &format!("rank-{rank}.trace.json"),
            &megatron_telemetry::chrome_trace_json(&sink.hub, stages),
        );
    }
    i32::from(result.is_err())
}

/// Send one heartbeat frame to the launcher: `[flat]` for a bare liveness
/// beacon, `[flat, completed_iters]` for a progress beat.
fn send_heartbeat(
    hb: &Mutex<SocketChannel>,
    launcher_rank: usize,
    frame: &[f32],
) -> Result<(), megatron_collective::SocketError> {
    let mut chan = hb.lock().unwrap_or_else(|e| e.into_inner());
    chan.set_deadline(Instant::now() + Duration::from_secs(5));
    megatron_collective::Transport::send(&mut *chan, launcher_rank, frame)
}

fn bits_json(xs: &[f32]) -> Json {
    Json::Arr(xs.iter().map(|v| Json::Num(v.to_bits() as f64)).collect())
}

fn bits_from(j: &Json) -> Vec<f32> {
    j.as_array()
        .map(|a| {
            a.iter()
                .filter_map(|v| v.as_f64())
                .map(|b| f32::from_bits(b as u32))
                .collect()
        })
        .unwrap_or_default()
}

fn volume_json(v: &RankCommVolume) -> Json {
    let c = |cv: &CommVolume| {
        Json::obj([
            ("all_reduce", Json::Num(cv.all_reduce_bytes)),
            ("all_gather", Json::Num(cv.all_gather_bytes)),
            ("reduce_scatter", Json::Num(cv.reduce_scatter_bytes)),
            ("broadcast", Json::Num(cv.broadcast_bytes)),
            ("ops", Json::Num(cv.ops as f64)),
        ])
    };
    Json::obj([
        ("tensor", c(&v.tensor)),
        ("data", c(&v.data)),
        ("p2p_send_bytes", Json::Num(v.p2p_send_bytes)),
    ])
}

fn volume_from(j: &Json) -> RankCommVolume {
    let c = |j: &Json| CommVolume {
        all_reduce_bytes: j.get("all_reduce").as_f64().unwrap_or(0.0),
        all_gather_bytes: j.get("all_gather").as_f64().unwrap_or(0.0),
        reduce_scatter_bytes: j.get("reduce_scatter").as_f64().unwrap_or(0.0),
        broadcast_bytes: j.get("broadcast").as_f64().unwrap_or(0.0),
        ops: j.get("ops").as_f64().unwrap_or(0.0) as u64,
    };
    RankCommVolume {
        tensor: c(j.get("tensor")),
        data: c(j.get("data")),
        p2p_send_bytes: j.get("p2p_send_bytes").as_f64().unwrap_or(0.0),
    }
}

// ---------------------------------------------------------------------------
// Launcher
// ---------------------------------------------------------------------------

/// One rank's parsed `rank-R.out.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct RankOutput {
    /// Thread coordinate.
    pub key: ThreadKey,
    /// OS pid of the rank process.
    pub pid: u32,
    /// Whether the process exited 0.
    pub exit_ok: bool,
    /// Display form of the rank's `TrainError`, if it failed.
    pub error: Option<String>,
    /// Per-iteration losses as this rank recorded them (only loss-owning
    /// ranks fill these; others report zeros).
    pub losses: Vec<f32>,
    /// Flattened final parameters of this rank's shard (bit-exact).
    pub params: Vec<f32>,
    /// Transport-measured comm volume.
    pub volume: RankCommVolume,
    /// Bytes the rank's comm-op tape implies it sent.
    pub tape_bytes: f64,
    /// Peak stashed-activation floats.
    pub peak_stash: usize,
    /// Completed step samples.
    pub steps: usize,
}

/// How one rank process ended, as the launcher observed it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerExit {
    /// Exited with status 0.
    Ok,
    /// Exited with a nonzero status code.
    Failed(i32),
    /// Terminated by a signal (SIGKILL, a panic-abort, ...).
    Killed,
    /// Still running when the wait deadline expired; reaped by SIGKILL.
    Timeout,
}

impl WorkerExit {
    fn of(status: std::process::ExitStatus) -> WorkerExit {
        use std::os::unix::process::ExitStatusExt;
        if status.signal().is_some() {
            WorkerExit::Killed
        } else {
            match status.code() {
                Some(0) | None => {
                    if status.success() {
                        WorkerExit::Ok
                    } else {
                        WorkerExit::Failed(-1)
                    }
                }
                Some(c) => WorkerExit::Failed(c),
            }
        }
    }
}

/// The merged result of a process-mode run.
#[derive(Debug, Clone, PartialEq)]
pub struct ProcOutcome {
    /// Per-rank outputs, keyed by thread coordinate.
    pub outputs: HashMap<ThreadKey, RankOutput>,
    /// Merged per-iteration losses (from the loss-owning ranks).
    pub losses: Vec<f32>,
    /// Ranks that left no parsable output file (e.g. SIGKILLed).
    pub missing: Vec<ThreadKey>,
    /// Per-flat-rank exit status.
    pub exits: Vec<WorkerExit>,
}

impl ProcOutcome {
    /// Did every rank finish cleanly?
    pub fn ok(&self) -> bool {
        self.missing.is_empty()
            && self.exits.iter().all(|e| *e == WorkerExit::Ok)
            && self
                .outputs
                .values()
                .all(|o| o.exit_ok && o.error.is_none())
    }
}

/// A launched process-mode job: child processes, the heartbeat listener,
/// and the liveness monitor.
pub struct LaunchHandle {
    job: JobSpec,
    dir: PathBuf,
    children: Mutex<Vec<Option<Child>>>,
    monitor: Arc<HealthMonitor>,
    stop: Arc<AtomicBool>,
    reader: Option<thread::JoinHandle<()>>,
    /// Per-flat-rank completed-iteration counters, fed by the heartbeat
    /// reader from `[flat, completed]` progress beats.
    progress: Arc<Vec<std::sync::atomic::AtomicUsize>>,
    /// Per-flat-rank exit status, filled lazily by [`LaunchHandle::poll_exits`].
    exits: Mutex<Vec<Option<WorkerExit>>>,
    // Keeps the launcher's listener (and its acceptor thread) alive.
    _node: Arc<SocketNode>,
}

/// Harden a rendezvous directory against stale state from a previous
/// run. Leftover `job.json` / `rank-R.addr` files would make fresh
/// workers dial dead (or worse, recycled) addresses and hang until the
/// comm deadline. Policy: read every advertised `rank-R.pid`; if any
/// pid is still alive (`/proc/<pid>` exists) the directory belongs to a
/// running job, so refuse loudly. Otherwise sweep the rendezvous files
/// (each unlink is atomic; checkpoint data under the dir is untouched)
/// and let the new job proceed.
fn clear_stale_rendezvous(dir: &Path) -> std::io::Result<()> {
    if !dir.join("job.json").is_file() {
        return Ok(());
    }
    let mut stale = Vec::new();
    let mut live = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name().to_string_lossy().into_owned();
        let is_rendezvous = name == "job.json"
            || name == "faults.json"
            || name == "ckpt.path"
            || name.starts_with("launcher.")
            || (name.starts_with("rank-")
                && (name.ends_with(".addr")
                    || name.ends_with(".pid")
                    || name.ends_with(".sock")
                    || name.ends_with(".out.json")
                    || name.ends_with(".trace.json")));
        if !is_rendezvous {
            continue;
        }
        if name.starts_with("rank-") && name.ends_with(".pid") {
            if let Ok(s) = fs::read_to_string(entry.path()) {
                if let Ok(pid) = s.trim().parse::<u32>() {
                    if fs::metadata(format!("/proc/{pid}")).is_ok() {
                        live.push((name.clone(), pid));
                    }
                }
            }
        }
        stale.push(entry.path());
    }
    if !live.is_empty() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::AddrInUse,
            format!(
                "rendezvous dir {} is in use: advertised worker pid(s) still alive: {}",
                dir.display(),
                live.iter()
                    .map(|(n, p)| format!("{n}={p}"))
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
        ));
    }
    for p in stale {
        let _ = fs::remove_file(p);
    }
    Ok(())
}

/// Launch `job` as `world` OS processes rendezvousing in `dir`
/// (created if absent). The workers re-exec the **current executable**
/// with `--proc-worker <dir> <rank>`, so the hosting binary must call
/// [`maybe_worker`] before anything else.
pub fn launch(job: &JobSpec, dir: &Path) -> std::io::Result<LaunchHandle> {
    launch_configured(job, dir, None, None)
}

/// [`launch`] with the supervisor-side extras: an explicit durable
/// checkpoint root (published to workers as `ckpt.path`, so respawn
/// attempts in fresh rendezvous dirs share one store) and a socket
/// fault plan (written as `faults.json` for workers to arm).
pub fn launch_configured(
    job: &JobSpec,
    dir: &Path,
    ckpt_root: Option<&Path>,
    faults: Option<&SocketFaultPlan>,
) -> std::io::Result<LaunchHandle> {
    assert!(job.wire.is_socket(), "process mode needs a socket wire");
    if !job.batch.is_multiple_of(job.data * job.microbatch) {
        // The in-process trainer asserts this; catch it here so an invalid
        // job errors before any worker is spawned instead of the workers
        // silently truncating the batch (`m` below rounds down).
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            format!(
                "batch {} must divide by d*b = {}",
                job.batch,
                job.data * job.microbatch
            ),
        ));
    }
    fs::create_dir_all(dir)?;
    clear_stale_rendezvous(dir)?;
    fs::write(dir.join("job.json"), job.to_json())?;
    if let Some(root) = ckpt_root {
        publish(dir, "ckpt.path", &root.display().to_string());
    }
    if let Some(plan) = faults {
        publish(dir, "faults.json", &plan.to_json());
    }

    let bind = match job.wire {
        WireKind::Tcp => WireAddr::Tcp("127.0.0.1:0".parse().unwrap()),
        _ => WireAddr::Uds(dir.join("launcher.sock")),
    };
    let node = Arc::new(SocketNode::bind(&bind)?);
    publish(dir, "launcher.addr", &node.addr().to_string());

    let spec = job.spec();
    let world = spec.world();
    let monitor = HealthMonitor::new(&spec, job.hb_period);
    let stop = Arc::new(AtomicBool::new(false));
    let progress: Arc<Vec<std::sync::atomic::AtomicUsize>> = Arc::new(
        (0..world)
            .map(|_| std::sync::atomic::AtomicUsize::new(0))
            .collect(),
    );
    let reader = {
        let mut chan = SocketChannel::new(
            Arc::clone(&node),
            HEARTBEAT_CHAN,
            world,
            vec![None; world + 1],
        );
        let monitor = Arc::clone(&monitor);
        let stop = Arc::clone(&stop);
        let progress = Arc::clone(&progress);
        thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                let mut idle = true;
                for r in 0..world {
                    chan.set_deadline(Instant::now() + Duration::from_millis(100));
                    while let Ok(Some(frame)) = megatron_collective::PollTransport::recv_within(
                        &mut chan,
                        r,
                        Duration::from_millis(1),
                    ) {
                        if let Some(&f) = frame.first() {
                            let fr = f as usize;
                            monitor.beat(fr);
                            // Two-element frames are progress beats:
                            // `[flat, completed_iters]`. `fetch_max`
                            // because a late bare beacon must not be
                            // confused with regressing progress.
                            if let Some(&done) = frame.get(1) {
                                if fr < world {
                                    progress[fr].fetch_max(done as usize, Ordering::Relaxed);
                                }
                            }
                            idle = false;
                        }
                    }
                }
                if idle {
                    thread::sleep(Duration::from_millis(2));
                }
            }
        })
    };

    let exe = std::env::current_exe()?;
    let mut children = Vec::with_capacity(world);
    for r in 0..world {
        children.push(Some(
            Command::new(&exe)
                .arg("--proc-worker")
                .arg(dir)
                .arg(r.to_string())
                .spawn()?,
        ));
    }

    Ok(LaunchHandle {
        job: *job,
        dir: dir.to_path_buf(),
        children: Mutex::new(children),
        monitor,
        stop,
        reader: Some(reader),
        progress,
        exits: Mutex::new(vec![None; world]),
        _node: node,
    })
}

impl LaunchHandle {
    /// The heartbeat-fed liveness monitor (beats arrive over the socket,
    /// one per worker beacon pulse and one per completed iteration).
    pub fn monitor(&self) -> Arc<HealthMonitor> {
        Arc::clone(&self.monitor)
    }

    /// OS pid of a rank's process, if it was spawned.
    pub fn pid(&self, rank: usize) -> Option<u32> {
        self.children.lock().unwrap()[rank].as_ref().map(|c| c.id())
    }

    /// SIGKILL one rank's process (the "pull the power cord" experiment).
    pub fn kill_rank(&self, rank: usize) -> bool {
        let mut children = self.children.lock().unwrap();
        match &mut children[rank] {
            Some(c) => c.kill().is_ok(),
            None => false,
        }
    }

    /// SIGKILL every remaining rank process.
    pub fn kill_all(&self) {
        let mut children = self.children.lock().unwrap();
        for c in children.iter_mut().flatten() {
            let _ = c.kill();
        }
    }

    /// Completed iterations reported by `rank`'s progress beats so far.
    pub fn progress(&self, rank: usize) -> usize {
        self.progress[rank].load(Ordering::Relaxed)
    }

    /// Minimum completed-iteration count across the world — the last
    /// iteration *every* rank has finished.
    pub fn min_progress(&self) -> usize {
        self.progress
            .iter()
            .map(|p| p.load(Ordering::Relaxed))
            .min()
            .unwrap_or(0)
    }

    /// Non-blocking exit sweep: `try_wait` every still-running child,
    /// reap any that ended, and return the per-rank picture so far
    /// (`None` = still running). This is how the supervisor notices a
    /// SIGKILL or panic *before* heartbeat silence does.
    pub fn poll_exits(&self) -> Vec<Option<WorkerExit>> {
        let mut children = self.children.lock().unwrap();
        let mut exits = self.exits.lock().unwrap();
        for (r, slot) in children.iter_mut().enumerate() {
            if exits[r].is_some() {
                continue;
            }
            if let Some(c) = slot.as_mut() {
                if let Ok(Some(status)) = c.try_wait() {
                    exits[r] = Some(WorkerExit::of(status));
                    *slot = None; // reaped
                }
            }
        }
        exits.clone()
    }

    /// Wait for every rank process to exit, then merge the per-rank
    /// output files into a [`ProcOutcome`]. Bounded: a worker that dies
    /// before rendezvous (or wedges past the comm deadline) no longer
    /// hangs the launcher forever — the default deadline covers
    /// rendezvous plus the workers' own communication timeout, after
    /// which stragglers are SIGKILLed and reported as
    /// [`WorkerExit::Timeout`].
    pub fn wait(self) -> ProcOutcome {
        let limit = RENDEZVOUS_TIMEOUT + self.job.comm_timeout * 4 + Duration::from_secs(60);
        self.wait_within(limit)
    }

    /// [`LaunchHandle::wait`] with an explicit deadline.
    pub fn wait_within(mut self, limit: Duration) -> ProcOutcome {
        let spec = self.job.spec();
        let world = spec.world();
        let deadline = Instant::now() + limit;
        loop {
            let exits = self.poll_exits();
            if exits.iter().all(|e| e.is_some()) {
                break;
            }
            if Instant::now() >= deadline {
                let mut children = self.children.lock().unwrap();
                let mut exits = self.exits.lock().unwrap();
                for (r, slot) in children.iter_mut().enumerate() {
                    if exits[r].is_none() {
                        if let Some(mut c) = slot.take() {
                            let _ = c.kill();
                            let _ = c.wait();
                        }
                        exits[r] = Some(WorkerExit::Timeout);
                    }
                }
                break;
            }
            thread::sleep(Duration::from_millis(5));
        }
        let exits: Vec<WorkerExit> = self
            .exits
            .lock()
            .unwrap()
            .iter()
            .map(|e| e.expect("all ranks resolved above"))
            .collect();
        let exit_ok: Vec<bool> = exits.iter().map(|e| *e == WorkerExit::Ok).collect();
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.reader.take() {
            let _ = h.join();
        }

        let mut outputs = HashMap::new();
        let mut missing = Vec::new();
        for (r, &rank_exit_ok) in exit_ok.iter().enumerate() {
            let key = spec.thread_key(r);
            let parsed = fs::read_to_string(self.dir.join(format!("rank-{r}.out.json")))
                .ok()
                .and_then(|s| Json::parse(&s).ok());
            match parsed {
                Some(j) => {
                    outputs.insert(
                        key,
                        RankOutput {
                            key,
                            pid: j.get("pid").as_f64().unwrap_or(0.0) as u32,
                            exit_ok: rank_exit_ok,
                            error: j.get("error").as_str().map(str::to_string),
                            losses: bits_from(j.get("losses_bits")),
                            params: bits_from(j.get("params_bits")),
                            volume: volume_from(j.get("volume")),
                            tape_bytes: j.get("tape_bytes").as_f64().unwrap_or(0.0),
                            peak_stash: j.get("peak_stash").as_f64().unwrap_or(0.0) as usize,
                            steps: j.get("steps").as_f64().unwrap_or(0.0) as usize,
                        },
                    );
                }
                None => missing.push(key),
            }
        }

        // Merge losses: every writer holds the same all-reduced value, so
        // take the first nonzero per iteration in flat-rank order.
        let mut losses = vec![0.0f32; self.job.iters];
        for (i, slot) in losses.iter_mut().enumerate() {
            for r in 0..world {
                if let Some(o) = outputs.get(&spec.thread_key(r)) {
                    if o.losses.get(i).copied().unwrap_or(0.0) != 0.0 {
                        *slot = o.losses[i];
                        break;
                    }
                }
            }
        }

        ProcOutcome {
            outputs,
            losses,
            missing,
            exits,
        }
    }
}

impl Drop for LaunchHandle {
    /// A dropped handle must not leak rank processes or the reader
    /// thread (e.g. when a test assertion fails mid-run).
    fn drop(&mut self) {
        self.kill_all();
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.reader.take() {
            let _ = h.join();
        }
    }
}

// ---------------------------------------------------------------------
// Launcher-side supervision: detect → restore → respawn
// ---------------------------------------------------------------------

/// One scheduled real kill in a supervised chaos run: SIGKILL `rank`'s
/// process once its progress beats report `after_iter` completed
/// iterations — i.e. while it is genuinely inside iteration
/// `after_iter + 1`, after any checkpoint shard written at the
/// `after_iter` boundary is already on disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProcKill {
    /// Flat rank of the victim process.
    pub rank: usize,
    /// Completed iterations the victim must report before the SIGKILL.
    pub after_iter: usize,
}

/// Why the supervisor tore an attempt down.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IncidentCause {
    /// Worker processes ended abnormally (signal, nonzero exit).
    Exit(Vec<(usize, WorkerExit)>),
    /// Ranks still running but heartbeat-silent past the dead window.
    Silence(Vec<usize>),
    /// No rank died, but the attempt overran its wall-clock limit.
    Wedged,
}

/// One detect → restore → respawn cycle a [`ProcSupervisor`] performed.
#[derive(Debug, Clone, PartialEq)]
pub struct ProcIncident {
    /// Attempt index (0-based) that died.
    pub attempt: usize,
    /// What the detector saw.
    pub cause: IncidentCause,
    /// Flat ranks implicated.
    pub dead_ranks: Vec<usize>,
    /// Minimum completed-iteration count across the world at detection.
    pub at_progress: usize,
    /// Seconds from the attempt's launch to detection.
    pub detect_s: f64,
    /// Durable generation the next attempt resumed from (0 = scratch).
    pub restored_generation: usize,
    /// Seconds spent committing shard sets and pinning the generation.
    pub restore_s: f64,
    /// Seconds slept in exponential backoff before the respawn.
    pub backoff_s: f64,
}

/// The merged result of a supervised run.
///
/// `outcome.losses` holds the cross-attempt merge (first nonzero per
/// absolute iteration). SIGKILLed attempts write no `rank-R.out.json`,
/// so iterations re-run from a restored generation are the ones
/// guaranteed present; the bit-identity proof therefore gates on the
/// merged **final parameters**, which the last (clean) attempt always
/// reports in full.
#[derive(Debug)]
pub struct ProcReport {
    /// Output of the final, clean attempt (losses merged across all).
    pub outcome: ProcOutcome,
    /// Every incident, in order.
    pub incidents: Vec<ProcIncident>,
    /// Attempts launched (1 = no incident).
    pub attempts: usize,
    /// Generations the launcher-side committer sealed, in commit order.
    pub committed: Vec<usize>,
    /// Total supervised wall seconds, backoffs included.
    pub wall_s: f64,
}

/// One topology segment of an elastic process-mode run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProcSegment {
    /// `(p, t, d)` the segment ran at.
    pub spec: (usize, usize, usize),
    /// First iteration (absolute) the segment executed.
    pub from_iter: usize,
    /// One past the last iteration the segment executed.
    pub to_iter: usize,
    /// Wall seconds for the segment, launch to merged exit.
    pub wall_s: f64,
}

/// The merged result of an elastic supervised run.
#[derive(Debug)]
pub struct ElasticProcReport {
    /// Output of the final segment (losses merged across segments).
    pub outcome: ProcOutcome,
    /// Shrink/grow records, reusing the in-process supervisor's type.
    pub reconfigurations: Vec<Reconfiguration>,
    /// Generations sealed by the launcher-side committer.
    pub committed: Vec<usize>,
    /// Per-segment timings, in execution order.
    pub segments: Vec<ProcSegment>,
}

/// Launcher-side supervision loop for process-mode jobs: fuses the
/// heartbeat [`HealthMonitor`] and [`LaunchHandle::poll_exits`] into a
/// detector, and heals by **restore + respawn** — commit whatever
/// complete shard generations the dead world left on disk, pin the
/// newest as the resume point, and re-exec the whole world in a fresh
/// rendezvous directory sharing the same durable store.
///
/// Workers cannot seal generations themselves (each process sees only
/// its own shard, and the in-trainer commit quorum never fills across
/// address spaces), so the supervisor doubles as the **committer**: its
/// watch loop sweeps the store for complete, CRC-valid shard sets and
/// writes their manifests.
///
/// Restart policy: at most `max_restarts` respawns, exponential backoff
/// `backoff_base · 2^n` capped at `backoff_cap`, and a per-attempt
/// wall-clock limit after which a silent-but-undead world counts as
/// wedged. Every incident is recorded as a [`ProcIncident`].
pub struct ProcSupervisor {
    job: JobSpec,
    root: PathBuf,
    /// Maximum respawns before giving up (budget).
    pub max_restarts: usize,
    /// First backoff; doubles per incident.
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_cap: Duration,
    /// How long after launch heartbeat silence is forgiven (spawn +
    /// rendezvous take seconds; `classify` counts never-beaten as dead).
    pub startup_grace: Duration,
    /// Per-attempt wall-clock limit; past it the attempt is wedged.
    pub attempt_limit: Duration,
    /// Watch-loop period.
    pub poll: Duration,
    /// Straggler threshold handed to [`HealthMonitor::classify`].
    pub slow_threshold: f64,
}

impl ProcSupervisor {
    /// A supervisor for `job`, scratch + durable state under `root`
    /// (`root/attempt-<k>/` rendezvous dirs, `root/ckpt` store). The job
    /// must checkpoint (`checkpoint_every > 0`) — without durable
    /// generations there is nothing to heal from.
    pub fn new(job: &JobSpec, root: &Path) -> ProcSupervisor {
        assert!(
            job.checkpoint_every > 0,
            "self-healing needs durable checkpoints (JobSpec::checkpoint_every > 0)"
        );
        ProcSupervisor {
            job: *job,
            root: root.to_path_buf(),
            max_restarts: 8,
            backoff_base: Duration::from_millis(50),
            backoff_cap: Duration::from_secs(2),
            startup_grace: Duration::from_secs(20),
            attempt_limit: RENDEZVOUS_TIMEOUT + job.comm_timeout * 4 + Duration::from_secs(120),
            poll: Duration::from_millis(5),
            slow_threshold: crate::health::DEFAULT_SLOW_THRESHOLD,
        }
    }

    fn ckpt_root(&self) -> PathBuf {
        self.root.join("ckpt")
    }

    fn store(&self) -> std::io::Result<Arc<CheckpointStore>> {
        CheckpointStore::open(self.ckpt_root()).map_err(|e| std::io::Error::other(e.to_string()))
    }

    /// Supervised run: launch, watch, and on any fatal incident restore
    /// the latest durable generation and respawn the world under the
    /// restart budget. `kills` is the chaos schedule of real SIGKILLs
    /// the supervisor itself fires (each at most once, on whichever
    /// attempt first reaches its progress trigger); `faults` is written
    /// as `faults.json` for attempt 0's workers to arm at the socket
    /// layer. If the durable store already holds generations from an
    /// earlier supervised run, attempt 0 resumes from them — that is the
    /// durable-restart path.
    pub fn run(
        &self,
        kills: &[ProcKill],
        faults: Option<&SocketFaultPlan>,
    ) -> std::io::Result<ProcReport> {
        let t0 = Instant::now();
        let store = self.store()?;
        let spec = self.job.spec();
        let world = spec.world();
        let io_err = |e: crate::checkpoint::CheckpointError| std::io::Error::other(e.to_string());
        let mut pending: Vec<Option<ProcKill>> = kills.iter().copied().map(Some).collect();
        let mut incidents: Vec<ProcIncident> = Vec::new();
        let mut committed: Vec<usize> = Vec::new();
        let mut merged_losses = vec![0.0f32; self.job.iters];
        let merge = |merged: &mut Vec<f32>, losses: &[f32]| {
            for (slot, v) in merged.iter_mut().zip(losses) {
                if *v != 0.0 {
                    *slot = *v;
                }
            }
        };

        committed.extend(
            store
                .commit_complete_generations(&spec, self.job.model)
                .map_err(io_err)?,
        );
        let mut resume = store
            .load_latest(&spec, self.job.model)
            .map(|r| r.generation)
            .unwrap_or(0);
        let mut attempt = 0usize;
        loop {
            let mut job = self.job;
            job.resume_from = resume;
            job.epoch = attempt;
            let dir = self.root.join(format!("attempt-{attempt}"));
            let handle = launch_configured(
                &job,
                &dir,
                Some(&self.ckpt_root()),
                if attempt == 0 { faults } else { None },
            )?;

            let attempt_t0 = Instant::now();
            let grace_until = attempt_t0 + self.startup_grace;
            let deadline = attempt_t0 + self.attempt_limit;
            let cause: Option<IncidentCause> = loop {
                thread::sleep(self.poll);
                // Fire any due chaos kills: the victim reported
                // `after_iter` completed, so it is mid-next-iteration.
                for slot in pending.iter_mut() {
                    if let Some(k) = *slot {
                        if k.rank < world && handle.progress(k.rank) >= k.after_iter.max(1) {
                            handle.kill_rank(k.rank);
                            *slot = None;
                        }
                    }
                }
                // Committer sweep: seal complete shard generations.
                if let Ok(newly) = store.commit_complete_generations(&spec, self.job.model) {
                    committed.extend(newly);
                }
                let exits = handle.poll_exits();
                if exits.iter().all(|e| matches!(e, Some(WorkerExit::Ok))) {
                    break None;
                }
                let abnormal: Vec<(usize, WorkerExit)> = exits
                    .iter()
                    .enumerate()
                    .filter_map(|(r, e)| match e {
                        Some(x) if *x != WorkerExit::Ok => Some((r, *x)),
                        _ => None,
                    })
                    .collect();
                if !abnormal.is_empty() {
                    break Some(IncidentCause::Exit(abnormal));
                }
                let now = Instant::now();
                if now >= grace_until {
                    let report = handle.monitor().classify(self.slow_threshold);
                    let silent: Vec<usize> = (0..world)
                        .filter(|&r| exits[r].is_none() && report.ranks[r].1.is_dead())
                        .collect();
                    if !silent.is_empty() {
                        break Some(IncidentCause::Silence(silent));
                    }
                }
                if now >= deadline {
                    break Some(IncidentCause::Wedged);
                }
            };

            match cause {
                None => {
                    let outcome = handle.wait();
                    merge(&mut merged_losses, &outcome.losses);
                    // One last committer sweep so the final boundary
                    // generation is sealed for whoever resumes later.
                    if let Ok(newly) = store.commit_complete_generations(&spec, self.job.model) {
                        committed.extend(newly);
                    }
                    let mut outcome = outcome;
                    outcome.losses = merged_losses;
                    return Ok(ProcReport {
                        outcome,
                        incidents,
                        attempts: attempt + 1,
                        committed,
                        wall_s: t0.elapsed().as_secs_f64(),
                    });
                }
                Some(cause) => {
                    let detect_s = attempt_t0.elapsed().as_secs_f64();
                    let at_progress = handle.min_progress();
                    let dead_ranks: Vec<usize> = match &cause {
                        IncidentCause::Exit(v) => v.iter().map(|(r, _)| *r).collect(),
                        IncidentCause::Silence(v) => v.clone(),
                        IncidentCause::Wedged => (0..world).collect(),
                    };
                    // Fail-stop teardown: the socket world cannot run
                    // degraded, so kill the survivors and reap everyone.
                    handle.kill_all();
                    let torn = handle.wait_within(Duration::from_secs(10));
                    merge(&mut merged_losses, &torn.losses);

                    attempt += 1;
                    if attempt > self.max_restarts {
                        return Err(std::io::Error::other(format!(
                            "restart budget exhausted: {} incidents over {} attempts \
                             (last cause: {cause:?})",
                            incidents.len() + 1,
                            attempt,
                        )));
                    }
                    let backoff = std::cmp::min(
                        self.backoff_cap,
                        self.backoff_base * 2u32.pow((attempt as u32 - 1).min(16)),
                    );
                    thread::sleep(backoff);

                    let restore_t0 = Instant::now();
                    committed.extend(
                        store
                            .commit_complete_generations(&spec, self.job.model)
                            .map_err(io_err)?,
                    );
                    resume = store
                        .load_latest(&spec, self.job.model)
                        .map(|r| r.generation)
                        .unwrap_or(0);
                    incidents.push(ProcIncident {
                        attempt: attempt - 1,
                        cause,
                        dead_ranks,
                        at_progress,
                        detect_s,
                        restored_generation: resume,
                        restore_s: restore_t0.elapsed().as_secs_f64(),
                        backoff_s: backoff.as_secs_f64(),
                    });
                }
            }
        }
    }

    /// Best degraded `(p, t, d)` for `capacity` survivors: the elastic
    /// layout picker (shared with the in-process supervisor) plus the
    /// process-mode constraint that the global batch stays divisible by
    /// `d · microbatch`.
    pub fn pick_degraded_spec(&self, capacity: usize) -> Option<PtdpSpec> {
        let spec = self.job.spec();
        let cost = crate::supervisor::job_cost_model(&spec, self.job.model, self.job.batch);
        cost.enumerate(capacity)
            .into_iter()
            .filter(|&(_, t, _)| !spec.vocab_parallel || self.job.model.vocab.is_multiple_of(t))
            .filter(|&(_, _, d)| self.job.batch.is_multiple_of(d * self.job.microbatch))
            .min_by(|&a, &b| {
                let (ca, cb) = (
                    cost.iteration_s(a.0, a.1, a.2),
                    cost.iteration_s(b.0, b.1, b.2),
                );
                ca.partial_cmp(&cb).unwrap().then(a.cmp(&b))
            })
            .map(|(p, t, d)| PtdpSpec {
                pipeline: p,
                tensor: t,
                data: d,
                ..spec
            })
    }

    /// Run one segment (a truncated or resumed job at some topology) to
    /// clean completion, then seal its boundary generations.
    fn run_segment(
        &self,
        job: &JobSpec,
        tag: &str,
        committed: &mut Vec<usize>,
    ) -> std::io::Result<(ProcOutcome, f64)> {
        let store = self.store()?;
        let t0 = Instant::now();
        let handle = launch_configured(job, &self.root.join(tag), Some(&self.ckpt_root()), None)?;
        let out = handle.wait();
        if !out.ok() {
            return Err(std::io::Error::other(format!(
                "elastic segment {tag} failed: exits {:?}, missing {:?}",
                out.exits, out.missing
            )));
        }
        committed.extend(
            store
                .commit_complete_generations(&job.spec(), job.model)
                .map_err(|e| std::io::Error::other(e.to_string()))?,
        );
        Ok((out, t0.elapsed().as_secs_f64()))
    }

    /// Elastic supervised run for one capacity dip: on
    /// [`CapacityEvent::Lost`] the world shrinks to the best degraded
    /// `(p, t, d)` the survivors support (through the cross-topology
    /// canonical checkpoint path), and on [`CapacityEvent::Returned`] it
    /// grows back at the next checkpoint boundary. Each topology change
    /// happens at a sealed generation, so every segment restores
    /// bit-identical state and the merged run matches a fault-free one.
    ///
    /// Requires the canonical layout, i.e. `shard_optimizer == false`.
    pub fn run_elastic(&self, events: &[CapacityEvent]) -> std::io::Result<ElasticProcReport> {
        assert!(
            !self.job.shard_optimizer,
            "elastic reconfiguration needs the canonical checkpoint layout \
             (ZeRO-1 shards are topology-bound)"
        );
        let spec = self.job.spec();
        let world = spec.world();
        let k = self.job.checkpoint_every;
        let iters = self.job.iters;
        let boundary = |it: usize| it.div_ceil(k) * k;
        let lost = events.iter().find_map(|e| match e {
            CapacityEvent::Lost { iteration, ranks } => Some((*iteration, *ranks)),
            _ => None,
        });
        let returned = events.iter().find_map(|e| match e {
            CapacityEvent::Returned { iteration, .. } => Some(*iteration),
            _ => None,
        });

        let mut committed = Vec::new();
        let mut segments = Vec::new();
        let mut reconfigurations = Vec::new();
        let mut merged_losses = vec![0.0f32; iters];
        let merge = |merged: &mut Vec<f32>, losses: &[f32]| {
            for (slot, v) in merged.iter_mut().zip(losses) {
                if *v != 0.0 {
                    *slot = *v;
                }
            }
        };

        // Segment plan: full spec to the shrink boundary, degraded spec
        // to the grow boundary, full spec to the end.
        let (cut, lost_ranks) = lost.unwrap_or((iters, 0));
        let cut = boundary(cut).min(iters);
        let grow = boundary(returned.unwrap_or(iters)).clamp(cut, iters);

        let mut job_a = self.job;
        job_a.iters = cut;
        job_a.epoch = 0;
        let (mut outcome, wall_a) = self.run_segment(&job_a, "seg-0-full", &mut committed)?;
        merge(&mut merged_losses, &outcome.losses);
        segments.push(ProcSegment {
            spec: (spec.pipeline, spec.tensor, spec.data),
            from_iter: 0,
            to_iter: cut,
            wall_s: wall_a,
        });

        if cut < iters && lost_ranks > 0 {
            let capacity = world.saturating_sub(lost_ranks).max(1);
            let degraded = self.pick_degraded_spec(capacity).ok_or_else(|| {
                std::io::Error::other(format!("no viable degraded layout for capacity {capacity}"))
            })?;
            let store = self.store()?;
            if grow > cut {
                let restore_t0 = Instant::now();
                let gen = store
                    .load_latest(&degraded, self.job.model)
                    .map_err(|e| std::io::Error::other(e.to_string()))?
                    .generation;
                let mut job_b = self.job;
                job_b.pipeline = degraded.pipeline;
                job_b.tensor = degraded.tensor;
                job_b.data = degraded.data;
                job_b.resume_from = gen;
                job_b.iters = grow;
                job_b.epoch = 1;
                reconfigurations.push(Reconfiguration {
                    at_iter: cut,
                    generation: gen,
                    from: (spec.pipeline, spec.tensor, spec.data),
                    to: (degraded.pipeline, degraded.tensor, degraded.data),
                    direction: ReconfigureDirection::Shrink,
                    capacity,
                    restore_s: restore_t0.elapsed().as_secs_f64(),
                });
                let (out_b, wall_b) = self.run_segment(&job_b, "seg-1-degraded", &mut committed)?;
                merge(&mut merged_losses, &out_b.losses);
                segments.push(ProcSegment {
                    spec: (degraded.pipeline, degraded.tensor, degraded.data),
                    from_iter: cut,
                    to_iter: grow,
                    wall_s: wall_b,
                });
                outcome = out_b;
            }
            if grow < iters {
                let restore_t0 = Instant::now();
                let gen = store
                    .load_latest(&spec, self.job.model)
                    .map_err(|e| std::io::Error::other(e.to_string()))?
                    .generation;
                let mut job_c = self.job;
                job_c.resume_from = gen;
                job_c.epoch = 2;
                reconfigurations.push(Reconfiguration {
                    at_iter: grow,
                    generation: gen,
                    from: (degraded.pipeline, degraded.tensor, degraded.data),
                    to: (spec.pipeline, spec.tensor, spec.data),
                    direction: ReconfigureDirection::Grow,
                    capacity: world,
                    restore_s: restore_t0.elapsed().as_secs_f64(),
                });
                let (out_c, wall_c) = self.run_segment(&job_c, "seg-2-full", &mut committed)?;
                merge(&mut merged_losses, &out_c.losses);
                segments.push(ProcSegment {
                    spec: (spec.pipeline, spec.tensor, spec.data),
                    from_iter: grow,
                    to_iter: iters,
                    wall_s: wall_c,
                });
                outcome = out_c;
            }
        }

        outcome.losses = merged_losses;
        Ok(ElasticProcReport {
            outcome,
            reconfigurations,
            committed,
            segments,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_spec_round_trips_through_json() {
        let mut job = JobSpec::canonical(2, 2, 2);
        job.wire = WireKind::Tcp;
        job.retry = true;
        job.lr = 0.012_345_7;
        job.schedule = ScheduleKind::GPipe;
        let back = JobSpec::from_json(&job.to_json()).unwrap();
        assert_eq!(job, back);
        let inter = JobSpec {
            schedule: ScheduleKind::Interleaved { chunks: 2 },
            chunks: 2,
            ..JobSpec::canonical(2, 1, 1)
        };
        assert_eq!(JobSpec::from_json(&inter.to_json()).unwrap(), inter);
    }

    #[test]
    fn matrix_frames_round_trip_bit_exactly() {
        let m = Matrix::from_fn(3, 5, |r, c| (r * 5 + c) as f32 * 0.1 - 0.7);
        let back = frame_matrix(&matrix_frame(&m)).unwrap();
        assert_eq!(back.rows(), 3);
        assert_eq!(back.cols(), 5);
        assert_eq!(m.as_slice(), back.as_slice());
        assert!(
            frame_matrix(&[2.0, 2.0, 1.0]).is_none(),
            "torn frame rejected"
        );
    }

    #[test]
    fn canonical_job_matches_inprocess_inputs() {
        let job = JobSpec::canonical(2, 2, 2);
        let spec = job.spec();
        assert_eq!(spec.world(), 8);
        let data = job.dataset();
        assert_eq!(data.len(), 2);
        assert_eq!(data[0].0.len(), 8 * job.model.seq);
        // Same seeds → same master weights in every process.
        let a = job.master();
        let b = job.master();
        assert_eq!(a.cfg, b.cfg);
    }

    #[test]
    fn resume_fields_default_to_zero_for_old_job_json() {
        // A job.json written before the self-healing fields existed must
        // still parse (fresh run, no checkpointing).
        let job = JobSpec::canonical(2, 1, 1);
        let mut j = Json::parse(&job.to_json()).unwrap();
        if let Json::Obj(m) = &mut j {
            for k in ["checkpoint_every", "resume_from", "epoch"] {
                m.remove(k);
            }
        }
        let back = JobSpec::from_json(&j.to_string()).unwrap();
        assert_eq!(back.checkpoint_every, 0);
        assert_eq!(back.resume_from, 0);
        assert_eq!(back.epoch, 0);
    }

    #[test]
    fn fault_plan_round_trips_through_json() {
        let plan = SocketFaultPlan::seeded(0xfa117, 8);
        assert!(!plan.faults.is_empty());
        let back = SocketFaultPlan::from_json(&plan.to_json()).unwrap();
        assert_eq!(plan, back);
    }

    #[test]
    fn seeded_fault_plan_is_deterministic_and_in_range() {
        let a = SocketFaultPlan::seeded(7, 8);
        let b = SocketFaultPlan::seeded(7, 8);
        assert_eq!(a, b);
        for f in &a.faults {
            let rank = match f {
                SocketFault::Sever { rank, .. }
                | SocketFault::Refuse { rank, .. }
                | SocketFault::Slow { rank, .. } => *rank,
            };
            assert!(rank < 8);
        }
        // Per-rank filtering covers exactly the planned faults.
        let total: usize = (0..8).map(|r| a.for_rank(r).len()).sum();
        assert_eq!(total, a.faults.len());
    }

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mproc-{}-{}", tag, std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn stale_rendezvous_with_dead_pids_is_swept() {
        let dir = scratch("stale-dead");
        fs::write(dir.join("job.json"), "{}").unwrap();
        fs::write(dir.join("rank-0.addr"), "uds:/tmp/gone.sock").unwrap();
        // A pid that is certainly not running (pid_max is far below this).
        fs::write(dir.join("rank-0.pid"), "999999999").unwrap();
        fs::write(dir.join("launcher.addr"), "uds:/tmp/gone2.sock").unwrap();
        clear_stale_rendezvous(&dir).unwrap();
        assert!(!dir.join("job.json").exists());
        assert!(!dir.join("rank-0.addr").exists());
        assert!(!dir.join("rank-0.pid").exists());
        assert!(!dir.join("launcher.addr").exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_rendezvous_with_live_pid_is_refused() {
        let dir = scratch("stale-live");
        fs::write(dir.join("job.json"), "{}").unwrap();
        // Our own pid is definitely alive.
        fs::write(dir.join("rank-0.pid"), std::process::id().to_string()).unwrap();
        let err = clear_stale_rendezvous(&dir).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::AddrInUse);
        assert!(err.to_string().contains("still alive"), "{err}");
        // Nothing was deleted.
        assert!(dir.join("job.json").exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn degraded_spec_respects_batch_divisibility() {
        let mut job = JobSpec::canonical(2, 2, 2);
        job.checkpoint_every = 2;
        let dir = scratch("degrade");
        let sup = ProcSupervisor::new(&job, &dir);
        // 6 survivors: best layout must keep batch % (d·b) == 0.
        let picked = sup.pick_degraded_spec(6).expect("some layout fits");
        assert!(picked.world() <= 6);
        assert!(job.batch.is_multiple_of(picked.data * job.microbatch));
        let _ = fs::remove_dir_all(&dir);
    }
}
