//! **Process mode**: run a `(p, t, d)` job as `p·t·d` real OS processes
//! over the socket transport (Unix-domain by default, TCP loopback on
//! request) instead of `p·t·d` threads over in-process mailboxes.
//!
//! The launcher ([`launch`]) forks/execs one worker per flat rank
//! (re-invoking the current executable with `--proc-worker <dir> <rank>`),
//! after writing the serialized [`JobSpec`] and its own heartbeat address
//! into a rendezvous directory. Each worker binds its own
//! [`SocketNode`], publishes `rank-R.addr` / `rank-R.pid` files
//! (atomically: write-temp + rename), waits for every peer's address, and
//! then runs the *unmodified* per-thread training loop
//! ([`run_thread`](crate::trainer)) — its tensor and data groups are
//! process-mode [`Group`]s over [`SocketChannel`]s, and its pipeline
//! endpoints are fed by pump threads that bridge socket frames to the
//! `mpsc` channels the worker already speaks.
//!
//! Determinism is the whole point: the collectives execute the exact same
//! step programs with the exact same chunk routing as the mailbox
//! transport, and the p2p pumps forward activations byte-for-byte, so an
//! N-process run produces **bit-identical** losses, final parameters, and
//! per-rank byte counts to the in-process run (proven in
//! `tests/process_mode.rs`). Results cross the process boundary through
//! `rank-R.out.json` files that encode every `f32` as its `u32` bit
//! pattern — no decimal round-trip.
//!
//! ## Channel-id map
//!
//! Every logical communicator gets a stable channel id, so one listener
//! per process serves all of them:
//!
//! | id | communicator |
//! |----|--------------|
//! | `1000 + pi·d + di` | tensor group of `(pi, di)`, members `ti ∈ 0..t` |
//! | `2000 + pi·t + ti` | data group of `(pi, ti)`, members `di ∈ 0..d` |
//! | `3000 + 2·s + dir` | pipeline boundary `s` lane (2 ranks: sender 0, receiver 1) |
//! | `4000` | heartbeats (`world + 1` ranks; the launcher is rank `world`) |
//!
//! ## Failure semantics
//!
//! A dead peer *process* cannot be poisoned (no shared memory), so every
//! stall surfaces as [`CommError::Timeout`](crate::comm::CommError) after
//! the group timeout — with the peer's **pid and socket address** attached
//! to the [`StallContext`](crate::comm::StallContext). Pipeline pumps use
//! the same convention: a receive pump that sees no frame for the comm
//! timeout assumes its stage neighbor died and hangs up, which the worker
//! observes as `PipelineBroken`. Liveness is tracked out-of-band: each
//! worker runs a beacon thread that sends a 1-element heartbeat frame to
//! the launcher every [`JobSpec::hb_period`], and the per-iteration
//! [`RunControl::on_beat`](crate::trainer::RunControl) hook beats too, so
//! the launcher's [`HealthMonitor`] classifies a SIGKILLed rank as dead
//! while stalled survivors keep beating.

use std::collections::HashMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Child, Command};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel as unbounded, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use megatron_collective::{SocketChannel, SocketNode, WireAddr};
use megatron_schedule::ScheduleKind;
use megatron_sim::json::Json;
use megatron_tensor::gpt::{GptModel, TinyGptConfig};
use megatron_tensor::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::comm::{CommVolume, Group, TransportConfig, WireKind};
use crate::health::HealthMonitor;
use crate::trainer::{
    classify_panic, run_thread, Endpoints, PtdpSpec, RankCommOps, RankCommVolume, RunControl,
    SharedMap, StepSample, ThreadArgs, ThreadKey, ThreadState,
};

const TENSOR_CHAN_BASE: u64 = 1000;
const DATA_CHAN_BASE: u64 = 2000;
const P2P_CHAN_BASE: u64 = 3000;
const HEARTBEAT_CHAN: u64 = 4000;

/// How long a worker waits for every peer's address file to appear.
const RENDEZVOUS_TIMEOUT: Duration = Duration::from_secs(30);

/// A self-contained, serializable description of one process-mode job:
/// the parallelization plan plus everything each worker needs to rebuild
/// identical inputs — model architecture, init/data seeds, batch size and
/// iteration count — so no tensor ever crosses the process boundary at
/// startup.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobSpec {
    /// Pipeline-parallel size `p`.
    pub pipeline: usize,
    /// Tensor-parallel size `t`.
    pub tensor: usize,
    /// Data-parallel size `d`.
    pub data: usize,
    /// Model chunks per device `v`.
    pub chunks: usize,
    /// Microbatch size `b`.
    pub microbatch: usize,
    /// Pipeline schedule.
    pub schedule: ScheduleKind,
    /// Adam learning rate.
    pub lr: f32,
    /// ZeRO-1 optimizer sharding.
    pub shard_optimizer: bool,
    /// §3.5 activation recomputation.
    pub recompute: bool,
    /// Vocab-parallel embedding + LM head.
    pub vocab_parallel: bool,
    /// Collective (and pipeline-pump) timeout.
    pub comm_timeout: Duration,
    /// Model architecture; every worker rebuilds the same master.
    pub model: TinyGptConfig,
    /// Seed for master-weight initialization.
    pub model_seed: u64,
    /// Seed for the synthetic token stream.
    pub data_seed: u64,
    /// Global batch size (samples per iteration).
    pub batch: usize,
    /// Training iterations.
    pub iters: usize,
    /// Socket flavor: must be [`WireKind::Uds`] or [`WireKind::Tcp`].
    pub wire: WireKind,
    /// Arm the reliable retry layer on every group.
    pub retry: bool,
    /// Write a per-rank Chrome trace (`rank-R.trace.json`).
    pub trace: bool,
    /// Heartbeat beacon period.
    pub hb_period: Duration,
}

impl JobSpec {
    /// The canonical seeded tiny job (the same model, seeds, batch, and
    /// iteration count as `tests/real_vs_sim_bytes.rs`), over UDS.
    pub fn canonical(pipeline: usize, tensor: usize, data: usize) -> JobSpec {
        let spec = PtdpSpec::new(pipeline, tensor, data);
        JobSpec {
            pipeline,
            tensor,
            data,
            chunks: spec.chunks,
            microbatch: spec.microbatch,
            schedule: spec.schedule,
            lr: spec.lr,
            shard_optimizer: spec.shard_optimizer,
            recompute: spec.recompute,
            vocab_parallel: spec.vocab_parallel,
            comm_timeout: spec.comm_timeout,
            model: TinyGptConfig {
                vocab: 13,
                seq: 6,
                hidden: 8,
                heads: 4,
                layers: 2,
            },
            model_seed: 7,
            data_seed: 11,
            batch: 8,
            iters: 2,
            wire: WireKind::Uds,
            retry: false,
            trace: false,
            hb_period: Duration::from_millis(25),
        }
    }

    /// The equivalent in-process parallelization plan.
    pub fn spec(&self) -> PtdpSpec {
        let mut s = PtdpSpec::new(self.pipeline, self.tensor, self.data);
        s.chunks = self.chunks;
        s.microbatch = self.microbatch;
        s.schedule = self.schedule;
        s.lr = self.lr;
        s.shard_optimizer = self.shard_optimizer;
        s.recompute = self.recompute;
        s.vocab_parallel = self.vocab_parallel;
        s.comm_timeout = self.comm_timeout;
        s
    }

    /// Total worker processes.
    pub fn world(&self) -> usize {
        self.pipeline * self.tensor * self.data
    }

    /// Rebuild the master model every worker starts from.
    pub fn master(&self) -> GptModel {
        let mut rng = StdRng::seed_from_u64(self.model_seed);
        GptModel::new(self.model, &mut rng)
    }

    /// Rebuild the synthetic dataset (identical in every process).
    pub fn dataset(&self) -> Vec<(Vec<usize>, Vec<usize>)> {
        let mut rng = StdRng::seed_from_u64(self.data_seed);
        (0..self.iters)
            .map(|_| {
                let toks: Vec<usize> = (0..self.batch * self.model.seq)
                    .map(|_| rng.gen_range(0..self.model.vocab))
                    .collect();
                let tgts: Vec<usize> = (0..self.batch * self.model.seq)
                    .map(|_| rng.gen_range(0..self.model.vocab))
                    .collect();
                (toks, tgts)
            })
            .collect()
    }

    /// The transport config every worker arms its groups with.
    pub fn transport(&self) -> TransportConfig {
        TransportConfig {
            wire: self.wire,
            retry: self.retry.then(Default::default),
            faults: None,
        }
    }

    /// Serialize to the `job.json` wire form. `f32` fields travel as
    /// their `u32` bit patterns so the round trip is exact.
    pub fn to_json(&self) -> String {
        let n = |x: usize| Json::Num(x as f64);
        let schedule = match self.schedule {
            ScheduleKind::GPipe => "gpipe".to_string(),
            ScheduleKind::OneFOneB => "1f1b".to_string(),
            ScheduleKind::Interleaved { chunks } => format!("interleaved:{chunks}"),
        };
        Json::obj([
            ("p", n(self.pipeline)),
            ("t", n(self.tensor)),
            ("d", n(self.data)),
            ("chunks", n(self.chunks)),
            ("microbatch", n(self.microbatch)),
            ("schedule", Json::Str(schedule)),
            ("lr_bits", Json::Num(self.lr.to_bits() as f64)),
            ("shard_optimizer", Json::Bool(self.shard_optimizer)),
            ("recompute", Json::Bool(self.recompute)),
            ("vocab_parallel", Json::Bool(self.vocab_parallel)),
            (
                "comm_timeout_ms",
                Json::Num(self.comm_timeout.as_millis() as f64),
            ),
            ("vocab", n(self.model.vocab)),
            ("seq", n(self.model.seq)),
            ("hidden", n(self.model.hidden)),
            ("heads", n(self.model.heads)),
            ("layers", n(self.model.layers)),
            ("model_seed", Json::Num(self.model_seed as f64)),
            ("data_seed", Json::Num(self.data_seed as f64)),
            ("batch", n(self.batch)),
            ("iters", n(self.iters)),
            (
                "wire",
                Json::Str(
                    match self.wire {
                        WireKind::Mailbox => "mailbox",
                        WireKind::Uds => "uds",
                        WireKind::Tcp => "tcp",
                    }
                    .to_string(),
                ),
            ),
            ("retry", Json::Bool(self.retry)),
            ("trace", Json::Bool(self.trace)),
            ("hb_period_ms", Json::Num(self.hb_period.as_millis() as f64)),
        ])
        .to_string()
    }

    /// Parse the `job.json` wire form.
    pub fn from_json(text: &str) -> Result<JobSpec, String> {
        let j = Json::parse(text).map_err(|e| e.to_string())?;
        let us = |k: &str| -> Result<usize, String> {
            j.get(k)
                .as_f64()
                .map(|v| v as usize)
                .ok_or_else(|| format!("job.json: missing numeric field `{k}`"))
        };
        let b = |k: &str| matches!(j.get(k), Json::Bool(true));
        let schedule = match j.get("schedule").as_str().unwrap_or("1f1b") {
            "gpipe" => ScheduleKind::GPipe,
            s if s.starts_with("interleaved:") => ScheduleKind::Interleaved {
                chunks: s["interleaved:".len()..]
                    .parse()
                    .map_err(|_| format!("job.json: bad schedule `{s}`"))?,
            },
            _ => ScheduleKind::OneFOneB,
        };
        let wire = match j.get("wire").as_str().unwrap_or("uds") {
            "tcp" => WireKind::Tcp,
            "mailbox" => WireKind::Mailbox,
            _ => WireKind::Uds,
        };
        Ok(JobSpec {
            pipeline: us("p")?,
            tensor: us("t")?,
            data: us("d")?,
            chunks: us("chunks")?,
            microbatch: us("microbatch")?,
            schedule,
            lr: f32::from_bits(us("lr_bits")? as u32),
            shard_optimizer: b("shard_optimizer"),
            recompute: b("recompute"),
            vocab_parallel: b("vocab_parallel"),
            comm_timeout: Duration::from_millis(us("comm_timeout_ms")? as u64),
            model: TinyGptConfig {
                vocab: us("vocab")?,
                seq: us("seq")?,
                hidden: us("hidden")?,
                heads: us("heads")?,
                layers: us("layers")?,
            },
            model_seed: us("model_seed")? as u64,
            data_seed: us("data_seed")? as u64,
            batch: us("batch")?,
            iters: us("iters")?,
            wire,
            retry: b("retry"),
            trace: b("trace"),
            hb_period: Duration::from_millis(us("hb_period_ms")? as u64),
        })
    }
}

// ---------------------------------------------------------------------------
// Rendezvous files
// ---------------------------------------------------------------------------

/// Atomically publish a rendezvous file: write `name.tmp`, then rename.
/// Readers polling the directory never observe a torn write.
fn publish(dir: &Path, name: &str, contents: &str) {
    let tmp = dir.join(format!("{name}.tmp"));
    fs::write(&tmp, contents).expect("write rendezvous file");
    fs::rename(&tmp, dir.join(name)).expect("rename rendezvous file");
}

fn read_addr(dir: &Path, name: &str) -> Option<WireAddr> {
    let text = fs::read_to_string(dir.join(name)).ok()?;
    WireAddr::parse(text.trim())
}

/// Poll until every worker's `rank-R.addr` exists, returning the flat-rank
/// edge map.
fn await_addrs(dir: &Path, world: usize, deadline: Instant) -> Result<Vec<WireAddr>, String> {
    let mut addrs: Vec<Option<WireAddr>> = vec![None; world];
    loop {
        for (r, slot) in addrs.iter_mut().enumerate() {
            if slot.is_none() {
                *slot = read_addr(dir, &format!("rank-{r}.addr"));
            }
        }
        if addrs.iter().all(|a| a.is_some()) {
            return Ok(addrs.into_iter().map(|a| a.unwrap()).collect());
        }
        if Instant::now() >= deadline {
            let missing: Vec<usize> = addrs
                .iter()
                .enumerate()
                .filter(|(_, a)| a.is_none())
                .map(|(r, _)| r)
                .collect();
            return Err(format!(
                "rendezvous timed out waiting for ranks {missing:?}"
            ));
        }
        thread::sleep(Duration::from_millis(2));
    }
}

// ---------------------------------------------------------------------------
// Pipeline p2p pumps
// ---------------------------------------------------------------------------

/// Matrix wire frame: `[rows, cols, data…]` as f32 (dimensions are exact
/// below 2²⁴). Serialization is lossless, so pumped activations are
/// bit-identical to in-process channel sends.
fn matrix_frame(m: &Matrix) -> Vec<f32> {
    let mut frame = Vec::with_capacity(m.rows() * m.cols() + 2);
    frame.push(m.rows() as f32);
    frame.push(m.cols() as f32);
    frame.extend_from_slice(m.as_slice());
    frame
}

fn frame_matrix(frame: &[f32]) -> Option<Matrix> {
    let (rows, cols) = (*frame.first()? as usize, *frame.get(1)? as usize);
    if frame.len() != rows * cols + 2 {
        return None;
    }
    Some(Matrix::from_vec(rows, cols, frame[2..].to_vec()))
}

/// Forward matrices from the worker's `mpsc` sender into the socket lane.
/// Exits when the worker drops its sender (normal completion) or a send
/// fails; the dropped receiver then surfaces to the worker as
/// `PipelineBroken` on its next send.
fn pump_send(mut chan: SocketChannel, rx: Receiver<Matrix>, timeout: Duration) {
    for m in rx {
        chan.set_deadline(Instant::now() + timeout);
        if megatron_collective::Transport::send(&mut chan, 1, &matrix_frame(&m)).is_err() {
            return;
        }
    }
}

/// Forward socket frames into the worker's `mpsc` receiver. Hangs up —
/// dropping the sender, which the worker observes as `PipelineBroken` —
/// after `timeout` of silence (the same dead-peer convention as group
/// collectives) or when `stop` is raised after the worker exits.
fn pump_recv(
    mut chan: SocketChannel,
    tx: Sender<Matrix>,
    stop: Arc<AtomicBool>,
    timeout: Duration,
) {
    let mut last_frame = Instant::now();
    while !stop.load(Ordering::Relaxed) {
        chan.set_deadline(Instant::now() + Duration::from_millis(200));
        match megatron_collective::PollTransport::recv_within(
            &mut chan,
            0,
            Duration::from_millis(50),
        ) {
            Ok(Some(frame)) => {
                last_frame = Instant::now();
                let Some(m) = frame_matrix(&frame) else {
                    return;
                };
                if tx.send(m).is_err() {
                    return;
                }
            }
            Ok(None) | Err(_) => {
                if last_frame.elapsed() > timeout {
                    return;
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Worker process
// ---------------------------------------------------------------------------

/// If the process was invoked as a rank worker (`--proc-worker <dir>
/// <rank>` anywhere in argv), run the worker to completion and exit.
/// Call this first thing in any binary that hosts [`launch`] — the
/// launcher re-execs the current executable with these arguments.
pub fn maybe_worker() {
    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--proc-worker") {
        if args.len() > i + 2 {
            let dir = PathBuf::from(&args[i + 1]);
            let rank: usize = args[i + 2].parse().expect("--proc-worker rank");
            std::process::exit(worker_main(&dir, rank));
        }
    }
}

/// The body of one rank process: bind, rendezvous, train, report.
/// Returns the process exit code (0 = the rank finished its run).
pub fn worker_main(dir: &Path, rank: usize) -> i32 {
    let job = match fs::read_to_string(dir.join("job.json"))
        .map_err(|e| e.to_string())
        .and_then(|s| JobSpec::from_json(&s))
    {
        Ok(j) => j,
        Err(e) => {
            eprintln!("rank {rank}: {e}");
            return 3;
        }
    };
    assert!(job.wire.is_socket(), "process mode needs a socket wire");
    let spec = job.spec();
    let world = spec.world();
    let (pi, di, ti) = spec.thread_key(rank);
    let (p, t, d, v) = (spec.pipeline, spec.tensor, spec.data, spec.chunks);
    let stages = p * v;
    let timeout = spec.comm_timeout;

    // Bind our listener and advertise it. UDS socket files live in the
    // rendezvous dir; TCP binds an ephemeral loopback port and publishes
    // the actual one.
    let bind = match job.wire {
        WireKind::Tcp => WireAddr::Tcp("127.0.0.1:0".parse().unwrap()),
        _ => WireAddr::Uds(dir.join(format!("rank-{rank}.sock"))),
    };
    let node = Arc::new(SocketNode::bind(&bind).expect("bind rank listener"));
    publish(dir, &format!("rank-{rank}.addr"), &node.addr().to_string());
    publish(
        dir,
        &format!("rank-{rank}.pid"),
        &std::process::id().to_string(),
    );

    let deadline = Instant::now() + RENDEZVOUS_TIMEOUT;
    let addrs = match await_addrs(dir, world, deadline) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("rank {rank}: {e}");
            return 3;
        }
    };
    let launcher_addr = read_addr(dir, "launcher.addr");
    let transport = job.transport();

    // Group communicators: one socket channel per logical group, one
    // member (this process) per group.
    let flat = |pj: usize, dj: usize, tj: usize| spec.flat_rank((pj, dj, tj));
    let tg = {
        let chan_id = TENSOR_CHAN_BASE + (pi * d + di) as u64;
        let peers = (0..t)
            .map(|tj| Some(addrs[flat(pi, di, tj)].clone()))
            .collect();
        let chan = SocketChannel::new(Arc::clone(&node), chan_id, ti, peers);
        Group::with_socket(t, timeout, transport, chan).member(ti)
    };
    let dg = {
        let chan_id = DATA_CHAN_BASE + (pi * t + ti) as u64;
        let peers = (0..d)
            .map(|dj| Some(addrs[flat(pi, dj, ti)].clone()))
            .collect();
        let chan = SocketChannel::new(Arc::clone(&node), chan_id, di, peers);
        Group::with_socket(d, timeout, transport, chan).member(di)
    };

    // Pipeline lanes: for every stage boundary this device touches, a
    // dedicated 2-rank channel per direction (sender = lane rank 0) and a
    // pump thread bridging it to the mpsc endpoints the worker expects.
    let stop = Arc::new(AtomicBool::new(false));
    let mut pumps = Vec::new();
    let mut ep = Endpoints::default();
    for s in 0..stages.saturating_sub(1) {
        let from_dev = s % p;
        let to_dev = (s + 1) % p;
        // dir 0 = forward activations (from→to), 1 = backward gradients.
        for (dir, tx_dev, rx_dev) in [(0u64, from_dev, to_dev), (1u64, to_dev, from_dev)] {
            let chan_id = P2P_CHAN_BASE + (s as u64) * 2 + dir;
            if pi == tx_dev {
                let peers = vec![None, Some(addrs[flat(rx_dev, di, ti)].clone())];
                let chan = SocketChannel::new(Arc::clone(&node), chan_id, 0, peers);
                let (mtx, mrx) = unbounded::<Matrix>();
                if dir == 0 {
                    ep.fwd_out.insert(s, mtx);
                } else {
                    ep.bwd_out.insert(s + 1, mtx);
                }
                pumps.push(thread::spawn(move || pump_send(chan, mrx, timeout)));
            }
            if pi == rx_dev {
                let chan = SocketChannel::new(Arc::clone(&node), chan_id, 1, vec![None, None]);
                let (mtx, mrx) = unbounded::<Matrix>();
                if dir == 0 {
                    ep.fwd_in.insert(s + 1, mrx);
                } else {
                    ep.bwd_in.insert(s, mrx);
                }
                let stop = Arc::clone(&stop);
                pumps.push(thread::spawn(move || pump_recv(chan, mtx, stop, timeout)));
            }
        }
    }

    // Heartbeats: a channel of world+1 ranks whose last rank is the
    // launcher. A beacon thread pulses process liveness every hb_period
    // (independent of training progress, so stalled-but-alive survivors
    // keep beating), and the per-iteration on_beat hook pulses progress.
    let hb = launcher_addr.map(|la| {
        let mut peers: Vec<Option<WireAddr>> = vec![None; world + 1];
        peers[world] = Some(la);
        let chan = SocketChannel::new(Arc::clone(&node), HEARTBEAT_CHAN, rank, peers);
        Arc::new(Mutex::new(chan))
    });
    if let Some(hb) = &hb {
        let hb = Arc::clone(hb);
        let stop = Arc::clone(&stop);
        let period = job.hb_period;
        pumps.push(thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                if send_heartbeat(&hb, world, rank).is_err() {
                    return;
                }
                thread::sleep(period);
            }
        }));
    }

    // Telemetry: per-process sink; the trace file is merged by the
    // launcher side (`repro analyze --merge-traces`).
    let sink = job.trace.then(|| {
        megatron_telemetry::TelemetrySink::new(megatron_telemetry::SinkConfig {
            world,
            flops_per_iteration: 0.0,
            gpu: None,
        })
    });

    let ctl = RunControl {
        comm_timeout: Some(timeout),
        telemetry: sink.clone(),
        on_beat: hb.as_ref().map(|hb| {
            let hb = Arc::clone(hb);
            Arc::new(move |r: usize| {
                let _ = send_heartbeat(&hb, world, r);
            }) as Arc<dyn Fn(usize) + Send + Sync>
        }),
        ..Default::default()
    };

    // The unmodified per-thread training loop, exactly as the in-process
    // trainer drives it — same ThreadArgs, same schedule, same seeds.
    let master = job.master();
    let dataset = job.dataset();
    let m = job.batch / d / spec.microbatch;
    let schedule = spec.schedule.build(p, m);
    let losses = Arc::new(Mutex::new(vec![0.0f32; job.iters]));
    let final_params: SharedMap<Vec<f32>> = Arc::new(Mutex::new(HashMap::new()));
    let peak_stash: SharedMap<usize> = Arc::new(Mutex::new(HashMap::new()));
    let step_times: SharedMap<Vec<StepSample>> = Arc::new(Mutex::new(HashMap::new()));
    let comm_volumes: SharedMap<RankCommVolume> = Arc::new(Mutex::new(HashMap::new()));
    let comm_ops: SharedMap<RankCommOps> = Arc::new(Mutex::new(HashMap::new()));
    let ckpts: Mutex<HashMap<usize, HashMap<ThreadKey, ThreadState>>> = Mutex::new(HashMap::new());

    let result: Result<(), crate::trainer::TrainError> = {
        let args = ThreadArgs {
            pi,
            di,
            ti,
            spec,
            master: &master,
            schedule: &schedule,
            data: &dataset,
            ep,
            tg,
            dg,
            losses: Arc::clone(&losses),
            final_params: Arc::clone(&final_params),
            peak_stash: Arc::clone(&peak_stash),
            step_times: Arc::clone(&step_times),
            comm_volumes: Arc::clone(&comm_volumes),
            comm_ops: Arc::clone(&comm_ops),
            ctl: &ctl,
            ckpts: &ckpts,
        };
        thread::scope(|s| {
            s.spawn(|| run_thread(args))
                .join()
                .unwrap_or_else(|e| Err(classify_panic(&e)))
        })
    };
    stop.store(true, Ordering::Relaxed);
    for h in pumps {
        let _ = h.join();
    }

    // Report: every f32 as u32 bits, so the launcher's merge is exact.
    let key = (pi, di, ti);
    let lock = |m: &SharedMap<Vec<f32>>| {
        m.lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(&key)
            .unwrap_or_default()
    };
    let vol = comm_volumes
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .remove(&key)
        .unwrap_or_default();
    let tape_bytes = comm_ops
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .remove(&key)
        .map(|ops| ops.total_bytes(t, ti, d, di))
        .unwrap_or(0.0);
    let peak = peak_stash
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .remove(&key)
        .unwrap_or(0);
    let steps = step_times
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .remove(&key)
        .map(|s| s.len())
        .unwrap_or(0);
    let losses = Arc::try_unwrap(losses)
        .unwrap()
        .into_inner()
        .unwrap_or_else(|e| e.into_inner());
    let doc = Json::obj([
        ("rank", Json::Num(rank as f64)),
        (
            "key",
            Json::Arr(vec![
                Json::Num(pi as f64),
                Json::Num(di as f64),
                Json::Num(ti as f64),
            ]),
        ),
        ("pid", Json::Num(std::process::id() as f64)),
        (
            "error",
            match &result {
                Ok(()) => Json::Null,
                Err(e) => Json::Str(e.to_string()),
            },
        ),
        ("losses_bits", bits_json(&losses)),
        ("params_bits", bits_json(&lock(&final_params))),
        ("volume", volume_json(&vol)),
        ("tape_bytes", Json::Num(tape_bytes)),
        ("peak_stash", Json::Num(peak as f64)),
        ("steps", Json::Num(steps as f64)),
    ]);
    publish(dir, &format!("rank-{rank}.out.json"), &doc.to_string());
    if let Some(sink) = &sink {
        publish(
            dir,
            &format!("rank-{rank}.trace.json"),
            &megatron_telemetry::chrome_trace_json(&sink.hub, stages),
        );
    }
    i32::from(result.is_err())
}

fn send_heartbeat(
    hb: &Mutex<SocketChannel>,
    launcher_rank: usize,
    flat: usize,
) -> Result<(), megatron_collective::SocketError> {
    let mut chan = hb.lock().unwrap_or_else(|e| e.into_inner());
    chan.set_deadline(Instant::now() + Duration::from_secs(5));
    megatron_collective::Transport::send(&mut *chan, launcher_rank, &[flat as f32])
}

fn bits_json(xs: &[f32]) -> Json {
    Json::Arr(xs.iter().map(|v| Json::Num(v.to_bits() as f64)).collect())
}

fn bits_from(j: &Json) -> Vec<f32> {
    j.as_array()
        .map(|a| {
            a.iter()
                .filter_map(|v| v.as_f64())
                .map(|b| f32::from_bits(b as u32))
                .collect()
        })
        .unwrap_or_default()
}

fn volume_json(v: &RankCommVolume) -> Json {
    let c = |cv: &CommVolume| {
        Json::obj([
            ("all_reduce", Json::Num(cv.all_reduce_bytes)),
            ("all_gather", Json::Num(cv.all_gather_bytes)),
            ("reduce_scatter", Json::Num(cv.reduce_scatter_bytes)),
            ("broadcast", Json::Num(cv.broadcast_bytes)),
            ("ops", Json::Num(cv.ops as f64)),
        ])
    };
    Json::obj([
        ("tensor", c(&v.tensor)),
        ("data", c(&v.data)),
        ("p2p_send_bytes", Json::Num(v.p2p_send_bytes)),
    ])
}

fn volume_from(j: &Json) -> RankCommVolume {
    let c = |j: &Json| CommVolume {
        all_reduce_bytes: j.get("all_reduce").as_f64().unwrap_or(0.0),
        all_gather_bytes: j.get("all_gather").as_f64().unwrap_or(0.0),
        reduce_scatter_bytes: j.get("reduce_scatter").as_f64().unwrap_or(0.0),
        broadcast_bytes: j.get("broadcast").as_f64().unwrap_or(0.0),
        ops: j.get("ops").as_f64().unwrap_or(0.0) as u64,
    };
    RankCommVolume {
        tensor: c(j.get("tensor")),
        data: c(j.get("data")),
        p2p_send_bytes: j.get("p2p_send_bytes").as_f64().unwrap_or(0.0),
    }
}

// ---------------------------------------------------------------------------
// Launcher
// ---------------------------------------------------------------------------

/// One rank's parsed `rank-R.out.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct RankOutput {
    /// Thread coordinate.
    pub key: ThreadKey,
    /// OS pid of the rank process.
    pub pid: u32,
    /// Whether the process exited 0.
    pub exit_ok: bool,
    /// Display form of the rank's `TrainError`, if it failed.
    pub error: Option<String>,
    /// Per-iteration losses as this rank recorded them (only loss-owning
    /// ranks fill these; others report zeros).
    pub losses: Vec<f32>,
    /// Flattened final parameters of this rank's shard (bit-exact).
    pub params: Vec<f32>,
    /// Transport-measured comm volume.
    pub volume: RankCommVolume,
    /// Bytes the rank's comm-op tape implies it sent.
    pub tape_bytes: f64,
    /// Peak stashed-activation floats.
    pub peak_stash: usize,
    /// Completed step samples.
    pub steps: usize,
}

/// The merged result of a process-mode run.
#[derive(Debug, Clone, PartialEq)]
pub struct ProcOutcome {
    /// Per-rank outputs, keyed by thread coordinate.
    pub outputs: HashMap<ThreadKey, RankOutput>,
    /// Merged per-iteration losses (from the loss-owning ranks).
    pub losses: Vec<f32>,
    /// Ranks that left no parsable output file (e.g. SIGKILLed).
    pub missing: Vec<ThreadKey>,
}

impl ProcOutcome {
    /// Did every rank finish cleanly?
    pub fn ok(&self) -> bool {
        self.missing.is_empty()
            && self
                .outputs
                .values()
                .all(|o| o.exit_ok && o.error.is_none())
    }
}

/// A launched process-mode job: child processes, the heartbeat listener,
/// and the liveness monitor.
pub struct LaunchHandle {
    job: JobSpec,
    dir: PathBuf,
    children: Mutex<Vec<Option<Child>>>,
    monitor: Arc<HealthMonitor>,
    stop: Arc<AtomicBool>,
    reader: Option<thread::JoinHandle<()>>,
    // Keeps the launcher's listener (and its acceptor thread) alive.
    _node: Arc<SocketNode>,
}

/// Launch `job` as `world` OS processes rendezvousing in `dir`
/// (created if absent). The workers re-exec the **current executable**
/// with `--proc-worker <dir> <rank>`, so the hosting binary must call
/// [`maybe_worker`] before anything else.
pub fn launch(job: &JobSpec, dir: &Path) -> std::io::Result<LaunchHandle> {
    assert!(job.wire.is_socket(), "process mode needs a socket wire");
    if !job.batch.is_multiple_of(job.data * job.microbatch) {
        // The in-process trainer asserts this; catch it here so an invalid
        // job errors before any worker is spawned instead of the workers
        // silently truncating the batch (`m` below rounds down).
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            format!(
                "batch {} must divide by d*b = {}",
                job.batch,
                job.data * job.microbatch
            ),
        ));
    }
    fs::create_dir_all(dir)?;
    fs::write(dir.join("job.json"), job.to_json())?;

    let bind = match job.wire {
        WireKind::Tcp => WireAddr::Tcp("127.0.0.1:0".parse().unwrap()),
        _ => WireAddr::Uds(dir.join("launcher.sock")),
    };
    let node = Arc::new(SocketNode::bind(&bind)?);
    publish(dir, "launcher.addr", &node.addr().to_string());

    let spec = job.spec();
    let world = spec.world();
    let monitor = HealthMonitor::new(&spec, job.hb_period);
    let stop = Arc::new(AtomicBool::new(false));
    let reader = {
        let mut chan = SocketChannel::new(
            Arc::clone(&node),
            HEARTBEAT_CHAN,
            world,
            vec![None; world + 1],
        );
        let monitor = Arc::clone(&monitor);
        let stop = Arc::clone(&stop);
        thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                let mut idle = true;
                for r in 0..world {
                    chan.set_deadline(Instant::now() + Duration::from_millis(100));
                    while let Ok(Some(frame)) = megatron_collective::PollTransport::recv_within(
                        &mut chan,
                        r,
                        Duration::from_millis(1),
                    ) {
                        if let Some(&f) = frame.first() {
                            monitor.beat(f as usize);
                            idle = false;
                        }
                    }
                }
                if idle {
                    thread::sleep(Duration::from_millis(2));
                }
            }
        })
    };

    let exe = std::env::current_exe()?;
    let mut children = Vec::with_capacity(world);
    for r in 0..world {
        children.push(Some(
            Command::new(&exe)
                .arg("--proc-worker")
                .arg(dir)
                .arg(r.to_string())
                .spawn()?,
        ));
    }

    Ok(LaunchHandle {
        job: *job,
        dir: dir.to_path_buf(),
        children: Mutex::new(children),
        monitor,
        stop,
        reader: Some(reader),
        _node: node,
    })
}

impl LaunchHandle {
    /// The heartbeat-fed liveness monitor (beats arrive over the socket,
    /// one per worker beacon pulse and one per completed iteration).
    pub fn monitor(&self) -> Arc<HealthMonitor> {
        Arc::clone(&self.monitor)
    }

    /// OS pid of a rank's process, if it was spawned.
    pub fn pid(&self, rank: usize) -> Option<u32> {
        self.children.lock().unwrap()[rank].as_ref().map(|c| c.id())
    }

    /// SIGKILL one rank's process (the "pull the power cord" experiment).
    pub fn kill_rank(&self, rank: usize) -> bool {
        let mut children = self.children.lock().unwrap();
        match &mut children[rank] {
            Some(c) => c.kill().is_ok(),
            None => false,
        }
    }

    /// SIGKILL every remaining rank process.
    pub fn kill_all(&self) {
        let mut children = self.children.lock().unwrap();
        for c in children.iter_mut().flatten() {
            let _ = c.kill();
        }
    }

    /// Wait for every rank process to exit, then merge the per-rank
    /// output files into a [`ProcOutcome`].
    pub fn wait(mut self) -> ProcOutcome {
        let spec = self.job.spec();
        let world = spec.world();
        let mut exit_ok = vec![false; world];
        {
            let mut children = self.children.lock().unwrap();
            for (r, slot) in children.iter_mut().enumerate() {
                if let Some(mut c) = slot.take() {
                    exit_ok[r] = c.wait().map(|s| s.success()).unwrap_or(false);
                }
            }
        }
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.reader.take() {
            let _ = h.join();
        }

        let mut outputs = HashMap::new();
        let mut missing = Vec::new();
        for (r, &rank_exit_ok) in exit_ok.iter().enumerate() {
            let key = spec.thread_key(r);
            let parsed = fs::read_to_string(self.dir.join(format!("rank-{r}.out.json")))
                .ok()
                .and_then(|s| Json::parse(&s).ok());
            match parsed {
                Some(j) => {
                    outputs.insert(
                        key,
                        RankOutput {
                            key,
                            pid: j.get("pid").as_f64().unwrap_or(0.0) as u32,
                            exit_ok: rank_exit_ok,
                            error: j.get("error").as_str().map(str::to_string),
                            losses: bits_from(j.get("losses_bits")),
                            params: bits_from(j.get("params_bits")),
                            volume: volume_from(j.get("volume")),
                            tape_bytes: j.get("tape_bytes").as_f64().unwrap_or(0.0),
                            peak_stash: j.get("peak_stash").as_f64().unwrap_or(0.0) as usize,
                            steps: j.get("steps").as_f64().unwrap_or(0.0) as usize,
                        },
                    );
                }
                None => missing.push(key),
            }
        }

        // Merge losses: every writer holds the same all-reduced value, so
        // take the first nonzero per iteration in flat-rank order.
        let mut losses = vec![0.0f32; self.job.iters];
        for (i, slot) in losses.iter_mut().enumerate() {
            for r in 0..world {
                if let Some(o) = outputs.get(&spec.thread_key(r)) {
                    if o.losses.get(i).copied().unwrap_or(0.0) != 0.0 {
                        *slot = o.losses[i];
                        break;
                    }
                }
            }
        }

        ProcOutcome {
            outputs,
            losses,
            missing,
        }
    }
}

impl Drop for LaunchHandle {
    /// A dropped handle must not leak rank processes or the reader
    /// thread (e.g. when a test assertion fails mid-run).
    fn drop(&mut self) {
        self.kill_all();
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.reader.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_spec_round_trips_through_json() {
        let mut job = JobSpec::canonical(2, 2, 2);
        job.wire = WireKind::Tcp;
        job.retry = true;
        job.lr = 0.012_345_7;
        job.schedule = ScheduleKind::GPipe;
        let back = JobSpec::from_json(&job.to_json()).unwrap();
        assert_eq!(job, back);
        let inter = JobSpec {
            schedule: ScheduleKind::Interleaved { chunks: 2 },
            chunks: 2,
            ..JobSpec::canonical(2, 1, 1)
        };
        assert_eq!(JobSpec::from_json(&inter.to_json()).unwrap(), inter);
    }

    #[test]
    fn matrix_frames_round_trip_bit_exactly() {
        let m = Matrix::from_fn(3, 5, |r, c| (r * 5 + c) as f32 * 0.1 - 0.7);
        let back = frame_matrix(&matrix_frame(&m)).unwrap();
        assert_eq!(back.rows(), 3);
        assert_eq!(back.cols(), 5);
        assert_eq!(m.as_slice(), back.as_slice());
        assert!(
            frame_matrix(&[2.0, 2.0, 1.0]).is_none(),
            "torn frame rejected"
        );
    }

    #[test]
    fn canonical_job_matches_inprocess_inputs() {
        let job = JobSpec::canonical(2, 2, 2);
        let spec = job.spec();
        assert_eq!(spec.world(), 8);
        let data = job.dataset();
        assert_eq!(data.len(), 2);
        assert_eq!(data[0].0.len(), 8 * job.model.seq);
        // Same seeds → same master weights in every process.
        let a = job.master();
        let b = job.master();
        assert_eq!(a.cfg, b.cfg);
    }
}
