//! The tensor-parallel transformer block (§2.3, Figure 5), executing for
//! real across the threads of one tensor group.
//!
//! Per block and microbatch there are exactly two all-reduces in the
//! forward pass (the `g` operator after the attention projection and after
//! the MLP down-projection) and two in the backward pass (the `f` operator
//! at each block entry) — the communication pattern the paper's §3.2 cost
//! model charges for.

use megatron_tensor::gpt::Block;
use megatron_tensor::layers::{
    gelu, gelu_backward, AttentionCache, AttentionCore, LayerNorm, LayerNormCache, Linear,
};
use megatron_tensor::Matrix;

use crate::comm::GroupMember;
use crate::shard;

/// One transformer block's tensor-parallel shard.
pub struct ParallelBlock {
    /// Replicated pre-attention LayerNorm.
    pub ln1: LayerNorm,
    /// Column-parallel (head-sharded) QKV projection, `h × 3h/t`.
    pub qkv: Linear,
    /// Row-parallel attention output projection, `(h/t) × h`, bias-free.
    pub proj: Linear,
    /// Replicated projection bias (applied once, after the all-reduce).
    pub proj_bias: Vec<f32>,
    /// Gradient of the projection bias.
    pub proj_gbias: Vec<f32>,
    /// Replicated pre-MLP LayerNorm.
    pub ln2: LayerNorm,
    /// Column-parallel MLP up-projection, `h × 4h/t`.
    pub fc1: Linear,
    /// Row-parallel MLP down-projection, `(4h/t) × h`, bias-free.
    pub fc2: Linear,
    /// Replicated down-projection bias.
    pub fc2_bias: Vec<f32>,
    /// Gradient of the down-projection bias.
    pub fc2_gbias: Vec<f32>,
    heads_local: usize,
    head_dim: usize,
}

/// Forward cache of a [`ParallelBlock`].
pub struct ParallelBlockCache {
    ln1: LayerNormCache,
    h1: Matrix,
    q: Matrix,
    k: Matrix,
    v: Matrix,
    attn: AttentionCache,
    attn_out: Matrix,
    ln2: LayerNormCache,
    h2: Matrix,
    f: Matrix,
    g: Matrix,
}

impl ParallelBlockCache {
    /// Total `f32` values held by this cache (for activation-memory
    /// instrumentation, §3.5).
    pub fn float_count(&self) -> usize {
        self.h1.len()
            + self.q.len()
            + self.k.len()
            + self.v.len()
            + self.attn_out.len()
            + self.h2.len()
            + self.f.len()
            + self.g.len()
            // Attention probabilities (the 5·a·s²·b/t term) and both
            // LayerNorm caches.
            + self.attn.float_count()
            + 2 * self.h1.len()
    }
}

/// Per-sequence KV cache holding one block's local head shard: rows are
/// token positions, columns are this rank's `heads_local · head_dim`
/// key/value features. Appended to by [`ParallelBlock::forward_decode`];
/// dropped wholesale when a sequence retires, freeing its slot.
#[derive(Debug, Clone, Default)]
pub struct BlockKv {
    k: Vec<f32>,
    v: Vec<f32>,
    cols: usize,
}

impl BlockKv {
    /// Empty cache for a shard with `cols = heads_local · head_dim`.
    pub fn new(cols: usize) -> Self {
        BlockKv {
            k: Vec::new(),
            v: Vec::new(),
            cols,
        }
    }

    /// Cached token positions.
    pub fn len(&self) -> usize {
        self.k.len().checked_div(self.cols).unwrap_or(0)
    }

    /// Whether any position is cached.
    pub fn is_empty(&self) -> bool {
        self.k.is_empty()
    }

    /// Total `f32` values held (KV-memory instrumentation).
    pub fn float_count(&self) -> usize {
        self.k.len() + self.v.len()
    }

    fn push(&mut self, krow: &[f32], vrow: &[f32]) {
        debug_assert_eq!(krow.len(), self.cols);
        self.k.extend_from_slice(krow);
        self.v.extend_from_slice(vrow);
    }

    fn k_row(&self, i: usize) -> &[f32] {
        &self.k[i * self.cols..(i + 1) * self.cols]
    }

    fn v_row(&self, i: usize) -> &[f32] {
        &self.v[i * self.cols..(i + 1) * self.cols]
    }
}

impl ParallelBlock {
    /// Width of this rank's KV shard (`heads_local · head_dim`), i.e. the
    /// column count of [`BlockKv`] caches fed to
    /// [`forward_decode`](Self::forward_decode).
    pub fn kv_cols(&self) -> usize {
        self.heads_local * self.head_dim
    }

    /// Extract rank `r` of `t`'s shard from a serial block with `heads`
    /// attention heads.
    pub fn from_serial(block: &Block, heads: usize, t: usize, r: usize) -> Self {
        let h = block.proj.w.cols();
        let hd = h / heads;
        ParallelBlock {
            ln1: block.ln1.clone(),
            qkv: shard::shard_qkv(&block.qkv, heads, t, r),
            proj: shard::shard_proj(&block.proj, heads, t, r),
            proj_bias: block.proj.b.clone().expect("serial proj has bias"),
            proj_gbias: vec![0.0; h],
            ln2: block.ln2.clone(),
            fc1: shard::shard_columns(&block.fc1, t, r),
            fc2: shard::shard_rows(&block.fc2, t, r),
            fc2_bias: block.fc2.b.clone().expect("serial fc2 has bias"),
            fc2_gbias: vec![0.0; h],
            heads_local: heads / t,
            head_dim: hd,
        }
    }

    fn core(&self, batch: usize, seq: usize) -> AttentionCore {
        AttentionCore {
            batch,
            seq,
            heads: self.heads_local,
            head_dim: self.head_dim,
        }
    }

    /// Forward pass; `x` is replicated across the tensor group.
    pub fn forward(
        &self,
        x: &Matrix,
        batch: usize,
        seq: usize,
        comm: &GroupMember,
    ) -> (Matrix, ParallelBlockCache) {
        let local = self.heads_local * self.head_dim;
        let (h1, ln1_cache) = self.ln1.forward(x);
        // f operator: identity in the forward pass.
        let qkv = self.qkv.forward(&h1);
        let q = qkv.columns(0, local);
        let k = qkv.columns(local, 2 * local);
        let v = qkv.columns(2 * local, 3 * local);
        let (attn_out, attn_cache) = self.core(batch, seq).forward(&q, &k, &v);
        let mut proj = self.proj.forward(&attn_out);
        // g operator: all-reduce partial sums across the tensor group.
        comm.all_reduce_sum(proj.as_mut_slice());
        for rr in 0..proj.rows() {
            for (o, b) in proj.row_mut(rr).iter_mut().zip(&self.proj_bias) {
                *o += b;
            }
        }
        let mut x2 = proj;
        x2.add_assign(x);
        let (h2, ln2_cache) = self.ln2.forward(&x2);
        let f = self.fc1.forward(&h2);
        let g = gelu(&f);
        let mut o = self.fc2.forward(&g);
        comm.all_reduce_sum(o.as_mut_slice());
        for rr in 0..o.rows() {
            for (ov, b) in o.row_mut(rr).iter_mut().zip(&self.fc2_bias) {
                *ov += b;
            }
        }
        o.add_assign(&x2);
        (
            o,
            ParallelBlockCache {
                ln1: ln1_cache,
                h1,
                q,
                k,
                v,
                attn: attn_cache,
                attn_out,
                ln2: ln2_cache,
                h2,
                f,
                g,
            },
        )
    }

    /// Incremental (KV-cached) forward for autoregressive decoding.
    ///
    /// `x` holds the new-token rows of several sequences concatenated:
    /// `chunks[i] = (rows_i, cache_i)` says the next `rows_i` rows belong
    /// to the sequence whose per-block cache (for *this* block) is
    /// `cache_i`, already holding the sequence's earlier positions. Each
    /// row's K/V shard is appended to the cache and its attention output
    /// computed against the cached prefix **including itself** — the
    /// causal row of the full-prefix computation.
    ///
    /// Bit-identity with [`forward`](Self::forward): every op here
    /// replicates the training path's float-op order exactly — GEMM rows
    /// are independent with a fixed k-order accumulation, LayerNorm /
    /// bias / GeLU / residual are row-local, the single-row attention
    /// below mirrors `AttentionCore::forward` (scores then scale, max-
    /// subtracted softmax over the causal prefix, zero-prob skip in the
    /// weighted sum), and a two-member all-reduce is a plain commutative
    /// add. Hence for `t ∈ {1, 2}` decoding one token at a time produces
    /// the same bits as re-running the whole prefix.
    pub fn forward_decode(
        &self,
        x: &Matrix,
        chunks: &mut [(usize, &mut BlockKv)],
        comm: &GroupMember,
    ) -> Matrix {
        let local = self.heads_local * self.head_dim;
        debug_assert_eq!(x.rows(), chunks.iter().map(|c| c.0).sum::<usize>());
        let (h1, _) = self.ln1.forward(x);
        let qkv = self.qkv.forward(&h1);
        let q = qkv.columns(0, local);
        let k = qkv.columns(local, 2 * local);
        let v = qkv.columns(2 * local, 3 * local);
        let scale = 1.0 / (self.head_dim as f32).sqrt();
        let mut attn_out = Matrix::zeros(x.rows(), local);
        let mut row0 = 0usize;
        for (rows, kv) in chunks.iter_mut() {
            debug_assert_eq!(kv.cols, local, "cache shard width mismatch");
            for i in 0..*rows {
                let r = row0 + i;
                kv.push(k.row(r), v.row(r));
                let p = kv.len() - 1; // absolute position of this row
                for hi in 0..self.heads_local {
                    let hs = hi * self.head_dim;
                    let qh = &q.row(r)[hs..hs + self.head_dim];
                    // Scores over the causal prefix: sequential dot per
                    // position (as matmul_nt), then a separate scale pass.
                    let mut scores = Vec::with_capacity(p + 1);
                    for j in 0..=p {
                        let kh = &kv.k_row(j)[hs..hs + self.head_dim];
                        let mut acc = 0.0f32;
                        for (av, bv) in qh.iter().zip(kh) {
                            acc += av * bv;
                        }
                        scores.push(acc);
                    }
                    for s in &mut scores {
                        *s *= scale;
                    }
                    // Max-subtracted softmax in position order.
                    let max = scores.iter().fold(f32::NEG_INFINITY, |a, &b| a.max(b));
                    let mut sum = 0.0f32;
                    for item in &mut scores {
                        *item = (*item - max).exp();
                        sum += *item;
                    }
                    for item in &mut scores {
                        *item /= sum;
                    }
                    // Weighted value sum with matmul's zero-coefficient
                    // skip (masked probabilities are exactly 0.0 there).
                    let orow = &mut attn_out.row_mut(r)[hs..hs + self.head_dim];
                    for (j, &pj) in scores.iter().enumerate() {
                        if pj == 0.0 {
                            continue;
                        }
                        let vh = &kv.v_row(j)[hs..hs + self.head_dim];
                        for (o, &bv) in orow.iter_mut().zip(vh) {
                            *o += pj * bv;
                        }
                    }
                }
            }
            row0 += *rows;
        }
        let mut proj = self.proj.forward(&attn_out);
        comm.all_reduce_sum(proj.as_mut_slice());
        for rr in 0..proj.rows() {
            for (o, b) in proj.row_mut(rr).iter_mut().zip(&self.proj_bias) {
                *o += b;
            }
        }
        let mut x2 = proj;
        x2.add_assign(x);
        let (h2, _) = self.ln2.forward(&x2);
        let f = self.fc1.forward(&h2);
        let g = gelu(&f);
        let mut o = self.fc2.forward(&g);
        comm.all_reduce_sum(o.as_mut_slice());
        for rr in 0..o.rows() {
            for (ov, b) in o.row_mut(rr).iter_mut().zip(&self.fc2_bias) {
                *ov += b;
            }
        }
        o.add_assign(&x2);
        o
    }

    /// Backward pass; `dout` is replicated. Returns the (all-reduced,
    /// replicated) input gradient.
    pub fn backward(
        &mut self,
        cache: &ParallelBlockCache,
        dout: &Matrix,
        batch: usize,
        seq: usize,
        comm: &GroupMember,
    ) -> Matrix {
        // MLP branch. Row-parallel backward is the identity (g conjugate).
        for rr in 0..dout.rows() {
            for (gb, d) in self.fc2_gbias.iter_mut().zip(dout.row(rr)) {
                *gb += d;
            }
        }
        let dg = self.fc2.backward(&cache.g, dout);
        let df = gelu_backward(&cache.f, &dg);
        let mut dh2 = self.fc1.backward(&cache.h2, &df);
        // f operator backward: all-reduce the partial input gradient.
        comm.all_reduce_sum(dh2.as_mut_slice());
        let mut dx2 = self.ln2.backward(&cache.ln2, &dh2);
        dx2.add_assign(dout);

        // Attention branch.
        for rr in 0..dx2.rows() {
            for (gb, d) in self.proj_gbias.iter_mut().zip(dx2.row(rr)) {
                *gb += d;
            }
        }
        let dattn = self.proj.backward(&cache.attn_out, &dx2);
        let (dq, dk, dv) =
            self.core(batch, seq)
                .backward(&cache.q, &cache.k, &cache.v, &cache.attn, &dattn);
        let dqkv = Matrix::concat_cols(&[dq, dk, dv]);
        let mut dh1 = self.qkv.backward(&cache.h1, &dqkv);
        comm.all_reduce_sum(dh1.as_mut_slice());
        let mut dx = self.ln1.backward(&cache.ln1, &dh1);
        dx.add_assign(&dx2);
        dx
    }

    /// Visit (param, grad) pairs (shards and replicated parameters alike).
    pub fn visit(&mut self, f: &mut impl FnMut(&mut [f32], &mut [f32])) {
        self.ln1.visit(f);
        self.qkv.visit(f);
        self.proj.visit(f);
        f(&mut self.proj_bias, &mut self.proj_gbias);
        self.ln2.visit(f);
        self.fc1.visit(f);
        self.fc2.visit(f);
        f(&mut self.fc2_bias, &mut self.fc2_gbias);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::Group;
    use rand::SeedableRng;
    use std::thread;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(77)
    }

    /// Run a closure on each rank of a fresh tensor group.
    fn with_group<T: Send>(t: usize, f: impl Fn(GroupMember) -> T + Sync) -> Vec<T> {
        let group = Group::new(t);
        thread::scope(|s| {
            let hs: Vec<_> = (0..t)
                .map(|r| {
                    let m = group.member(r);
                    s.spawn(|| f(m))
                })
                .collect();
            hs.into_iter().map(|h| h.join().unwrap()).collect()
        })
    }

    #[test]
    fn parallel_forward_matches_serial() {
        let mut r = rng();
        let (h, heads, batch, seq) = (8usize, 4usize, 2usize, 5usize);
        let block = Block::new(h, heads, &mut r);
        let x = Matrix::randn(batch * seq, h, 1.0, &mut r);
        let (serial_out, _) = block.forward(&x, batch, seq);

        for t in [1usize, 2, 4] {
            let outs = with_group(t, |m| {
                let pb = ParallelBlock::from_serial(&block, heads, t, m.rank());
                let (out, _) = pb.forward(&x, batch, seq, &m);
                out
            });
            for (ti, out) in outs.iter().enumerate() {
                let d = out.max_abs_diff(&serial_out);
                assert!(d < 1e-4, "t={t} rank {ti}: diff {d}");
            }
        }
    }

    #[test]
    fn cached_decode_bit_identical_to_full_forward() {
        let mut r = rng();
        // Odd sequence length and odd per-rank head count at t=2, so the
        // all-reduce buffers and head splits are deliberately non-round.
        let (h, heads, seq) = (12usize, 6usize, 5usize);
        let block = Block::new(h, heads, &mut r);
        let x = Matrix::randn(seq, h, 1.0, &mut r);
        for t in [1usize, 2] {
            let outs = with_group(t, |m| {
                let pb = ParallelBlock::from_serial(&block, heads, t, m.rank());
                let (full, _) = pb.forward(&x, 1, seq, &m);
                // Incremental: one row at a time through the KV cache.
                let mut kv = BlockKv::new(pb.kv_cols());
                let mut parts = Vec::new();
                for s in 0..seq {
                    let xi = x.rows_slice(s, s + 1);
                    let mut chunks = [(1usize, &mut kv)];
                    parts.push(pb.forward_decode(&xi, &mut chunks, &m));
                }
                (full, Matrix::concat_rows(&parts))
            });
            for (rank, (full, inc)) in outs.iter().enumerate() {
                assert_eq!(full.max_abs_diff(inc), 0.0, "t={t} rank={rank}");
            }
        }
    }

    #[test]
    fn cached_decode_chunking_does_not_change_bits() {
        let mut r = rng();
        let (h, heads, seq) = (8usize, 4usize, 7usize);
        let block = Block::new(h, heads, &mut r);
        let x = Matrix::randn(seq, h, 1.0, &mut r);
        let outs = with_group(2, |m| {
            let pb = ParallelBlock::from_serial(&block, heads, 2, m.rank());
            let run = |splits: &[usize]| {
                let mut kv = BlockKv::new(pb.kv_cols());
                let mut parts = Vec::new();
                let mut at = 0;
                for &n in splits {
                    let xi = x.rows_slice(at, at + n);
                    let mut chunks = [(n, &mut kv)];
                    parts.push(pb.forward_decode(&xi, &mut chunks, &m));
                    at += n;
                }
                Matrix::concat_rows(&parts)
            };
            (run(&[7]), run(&[3, 3, 1]), run(&[1; 7]))
        });
        for (whole, chunked, single) in &outs {
            assert_eq!(whole.max_abs_diff(chunked), 0.0);
            assert_eq!(whole.max_abs_diff(single), 0.0);
        }
    }

    #[test]
    fn block_kv_accounting() {
        let mut kv = BlockKv::new(4);
        assert!(kv.is_empty());
        kv.push(&[1.0; 4], &[2.0; 4]);
        kv.push(&[3.0; 4], &[4.0; 4]);
        assert_eq!(kv.len(), 2);
        assert_eq!(kv.float_count(), 16);
        assert_eq!(kv.k_row(1), &[3.0; 4]);
        assert_eq!(kv.v_row(0), &[2.0; 4]);
    }

    #[test]
    fn parallel_backward_input_grad_matches_serial() {
        let mut r = rng();
        let (h, heads, batch, seq) = (8usize, 4usize, 1usize, 4usize);
        let block = Block::new(h, heads, &mut r);
        let x = Matrix::randn(batch * seq, h, 1.0, &mut r);
        let dout = Matrix::randn(batch * seq, h, 1.0, &mut r);

        let mut serial = block.clone();
        let (_, cache) = serial.forward(&x, batch, seq);
        let serial_dx = serial.backward(&cache, &dout, batch, seq);

        let dxs = with_group(2, |m| {
            let mut pb = ParallelBlock::from_serial(&block, heads, 2, m.rank());
            let (_, cache) = pb.forward(&x, batch, seq, &m);
            pb.backward(&cache, &dout, batch, seq, &m)
        });
        for dx in &dxs {
            let d = dx.max_abs_diff(&serial_dx);
            assert!(d < 1e-4, "diff {d}");
        }
    }

    #[test]
    fn parallel_weight_grads_match_serial_shards() {
        let mut r = rng();
        let (h, heads, batch, seq) = (8usize, 4usize, 1usize, 4usize);
        let block = Block::new(h, heads, &mut r);
        let x = Matrix::randn(batch * seq, h, 1.0, &mut r);
        let dout = Matrix::randn(batch * seq, h, 1.0, &mut r);

        let mut serial = block.clone();
        let (_, cache) = serial.forward(&x, batch, seq);
        serial.backward(&cache, &dout, batch, seq);

        let shards = with_group(2, |m| {
            let mut pb = ParallelBlock::from_serial(&block, heads, 2, m.rank());
            let (_, cache) = pb.forward(&x, batch, seq, &m);
            pb.backward(&cache, &dout, batch, seq, &m);
            (
                m.rank(),
                pb.fc1.gw.clone(),
                pb.qkv.gw.clone(),
                pb.ln1.ggamma.clone(),
            )
        });
        for (rank, fc1_gw, qkv_gw, ln1_gg) in shards {
            // fc1 gradient shard = serial gradient's column slice.
            let want_fc1 = serial.fc1.gw.columns(rank * 2 * h, (rank + 1) * 2 * h);
            assert!(fc1_gw.max_abs_diff(&want_fc1) < 1e-4, "rank {rank} fc1");
            // qkv gradient shard: check the q-section columns.
            let local = h / 2;
            let want_q = serial.qkv.gw.columns(rank * local, (rank + 1) * local);
            assert!(
                qkv_gw.columns(0, local).max_abs_diff(&want_q) < 1e-4,
                "rank {rank} qkv"
            );
            // Replicated LayerNorm gradients equal the serial ones.
            for (a, b) in ln1_gg.iter().zip(&serial.ln1.ggamma) {
                assert!((a - b).abs() < 1e-4, "rank {rank} ln1");
            }
        }
    }

    #[test]
    fn replicated_grads_identical_across_ranks() {
        let mut r = rng();
        let (h, heads, batch, seq) = (8usize, 2usize, 1usize, 3usize);
        let block = Block::new(h, heads, &mut r);
        let x = Matrix::randn(batch * seq, h, 1.0, &mut r);
        let dout = Matrix::randn(batch * seq, h, 1.0, &mut r);
        let results = with_group(2, |m| {
            let mut pb = ParallelBlock::from_serial(&block, heads, 2, m.rank());
            let (_, cache) = pb.forward(&x, batch, seq, &m);
            pb.backward(&cache, &dout, batch, seq, &m);
            (pb.proj_gbias.clone(), pb.ln2.gbeta.clone())
        });
        assert_eq!(results[0].0, results[1].0, "proj bias grads diverged");
        assert_eq!(results[0].1, results[1].1, "ln2 grads diverged");
    }
}
