//! Elastic auto-recovery: run training to completion across failures
//! without an operator in the loop.
//!
//! The paper's §5.10 prices checkpoint I/O but leaves restarts to a human;
//! at large scale (MegaScale et al.) the control plane must notice the
//! failure, restore the last durable checkpoint, and resume by itself. The
//! [`Supervisor`] closes that loop around [`PtdpTrainer`]: it launches a
//! run with durable checkpointing enabled, classifies any [`TrainError`],
//! restores from the newest complete generation in its
//! [`CheckpointStore`], and retries under a bounded exponential backoff
//! and a max-restart budget. Transient errors (a killed rank, a failed
//! collective, a broken pipeline) are retried; structural ones (missing
//! snapshot state, a non-communicator panic, checkpoint I/O failure) stop
//! the job immediately. Each recovery is recorded as an [`Incident`] —
//! failed-attempt wall time, restore time, backoff, iterations of lost
//! work — so measured recovery cost can be cross-checked against
//! `megatron-fault`'s analytic goodput model.
//!
//! # Elastic reconfiguration
//!
//! [`Supervisor::run_elastic`] goes one step further: instead of retrying
//! the *same* topology after a fatal incident, it reshapes the job to fit
//! whatever capacity survives.
//!
//! - **Shrink** (immediately on a fatal incident): the capacity ledger
//!   drops by the dead ranks (plus any scheduled
//!   [`CapacityEvent::Lost`]); when the survivors no longer fit
//!   `p·t·d`, the supervisor ranks every valid divisor configuration with
//!   the simulator's cost model (`megatron_sim::elastic::CostModel`),
//!   restores the best one from the canonical checkpoint layout via the
//!   cross-topology path in [`CheckpointStore::load_latest`], and
//!   continues training degraded.
//! - **Grow** (only at a checkpoint boundary): when a
//!   [`CapacityEvent::Returned`] arrives, the degraded run is truncated at
//!   the next multiple of `checkpoint_every`, which durably commits that
//!   generation; the supervisor then reshards it back up to the launch
//!   topology (or the best configuration the returned capacity allows)
//!   and resumes. Growing mid-segment would need a generation that does
//!   not exist yet — the boundary is where a canonical layout is
//!   guaranteed on disk, which is why grow waits for it.
//!
//! Because training is deterministic and restores are exact-f32, the
//! segment after a shrink or grow is bit-identical to a fresh run launched
//! at that topology from the same generation (proven in
//! `tests/recovery.rs`), and a supervised run that survives any number of
//! mid-run kills produces bit-identical losses and final weights to a
//! fault-free run of the same job.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use megatron_sim::elastic::CostModel;
use megatron_telemetry::{SpanArgs, SpanKind, TelemetrySink};
use megatron_tensor::gpt::{GptModel, TinyGptConfig};

use crate::checkpoint::{CheckpointError, CheckpointStore};
use crate::comm::TransportConfig;
use crate::health::{HealthMonitor, DEFAULT_SLOW_THRESHOLD};
use crate::trainer::{
    KillSwitch, PtdpSpec, PtdpTrainer, RunControl, ThreadKey, TrainError, TrainSnapshot,
};

/// Retry policy for a [`Supervisor`].
#[derive(Debug, Clone, Copy)]
pub struct SupervisorConfig {
    /// Restart budget: up to `1 + max_restarts` attempts total. Elastic
    /// grows are planned topology changes, not failures — they never
    /// consume this budget.
    pub max_restarts: usize,
    /// Durable checkpoint interval in iterations.
    pub checkpoint_every: usize,
    /// Backoff before restart attempt `n` is `backoff_base · 2ⁿ`, capped
    /// at [`SupervisorConfig::backoff_max`].
    pub backoff_base: Duration,
    /// Upper bound on a single backoff sleep.
    pub backoff_max: Duration,
    /// The collective timeout is halved on every retry attempt (repeat
    /// failures should be detected faster), but never below this floor.
    pub min_comm_timeout: Duration,
    /// Straggler threshold handed to [`HealthMonitor::classify`] when a
    /// failed attempt's ranks are triaged: a living rank whose mean beat
    /// interval exceeds this multiple of the median counts as slow.
    /// Defaults to [`DEFAULT_SLOW_THRESHOLD`]; raise it on noisy hosts to
    /// avoid misreporting scheduler jitter as stragglers.
    pub slow_threshold: f64,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            max_restarts: 5,
            checkpoint_every: 2,
            backoff_base: Duration::from_millis(10),
            backoff_max: Duration::from_secs(1),
            min_comm_timeout: Duration::from_millis(500),
            slow_threshold: DEFAULT_SLOW_THRESHOLD,
        }
    }
}

/// The fault taxonomy: what an incident *costs*.
///
/// The expensive question at scale is not "did something go wrong?" but
/// "who pays?". Transient faults — dropped/duplicated/delayed messages, a
/// briefly degraded link — are absorbed inside the transport's retry layer
/// (`comm::TransportConfig`) and cost microseconds; the supervisor only
/// logs them. Fatal faults — a dead rank, an exhausted retransmit budget —
/// abort the attempt and cost a checkpoint restore plus the lost work
/// since the last checkpoint (the Young/Daly term in
/// `fault::GoodputModel`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IncidentSeverity {
    /// Absorbed in-band; training continued, no restore was paid.
    Transient,
    /// Aborted the attempt; recovery required checkpoint restore.
    Fatal,
}

/// A scheduled change in cluster capacity, mirroring [`KillSwitch`]: a
/// seeded schedule of these drives the elastic supervisor the way a kill
/// list drives fault injection. Iterations are absolute (0-based), same
/// convention as [`KillSwitch::iteration`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CapacityEvent {
    /// `ranks` GPUs are gone from `iteration` on — capacity lost *beyond*
    /// whatever rank a [`KillSwitch`] already killed (a fatal incident
    /// debits its own dead ranks from the ledger automatically).
    Lost {
        /// Iteration (absolute) at which the capacity disappears.
        iteration: usize,
        /// GPUs lost.
        ranks: usize,
    },
    /// `ranks` GPUs are repaired and available again from `iteration` on.
    /// The supervisor grows at the next checkpoint boundary at or after
    /// this iteration, never mid-segment.
    Returned {
        /// Iteration (absolute) from which the capacity is usable.
        iteration: usize,
        /// GPUs returned.
        ranks: usize,
    },
}

/// Which way a reconfiguration moved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReconfigureDirection {
    /// Capacity dropped below the running world: pick the best degraded
    /// configuration and reshard down.
    Shrink,
    /// Capacity returned: reshard back up at a checkpoint boundary.
    Grow,
}

/// One topology change the elastic supervisor performed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Reconfiguration {
    /// Iteration the change happened at (the failure point for a shrink,
    /// the checkpoint boundary for a grow).
    pub at_iter: usize,
    /// Checkpoint generation the new topology restored from (0 when no
    /// durable generation existed yet and training restarted from
    /// scratch at the new shape).
    pub generation: usize,
    /// (p, t, d) before.
    pub from: (usize, usize, usize),
    /// (p, t, d) after.
    pub to: (usize, usize, usize),
    /// Shrink or grow.
    pub direction: ReconfigureDirection,
    /// Live GPUs in the capacity ledger when the choice was made.
    pub capacity: usize,
    /// Seconds spent on the cross-topology restore for this change (a
    /// shrink's restore also appears in its [`Incident::restore_s`]; a
    /// grow's is recorded only here).
    pub restore_s: f64,
}

/// A batch of transient faults one attempt absorbed without restarting,
/// observed via the transport's telemetry counters. The existence of
/// these entries alongside a zero restart count is the proof that
/// transient faults no longer trigger the fatal path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransientIncident {
    /// The attempt during which the faults were absorbed.
    pub attempt: usize,
    /// Poll retries the reliable transport performed.
    pub retries: u64,
    /// Frames recovered from the retransmit store.
    pub retransmits: u64,
    /// Duplicate frames discarded.
    pub duplicates_dropped: u64,
}

/// One failure → recovery cycle, as observed by the supervisor. Always
/// [`IncidentSeverity::Fatal`]: transient faults are absorbed below the
/// supervisor and logged as [`TransientIncident`]s instead.
#[derive(Debug, Clone)]
pub struct Incident {
    /// Severity under the fault taxonomy (fatal by construction — the
    /// error reached the supervisor).
    pub severity: IncidentSeverity,
    /// Which attempt failed (0 = the initial run).
    pub attempt: usize,
    /// The error that ended the attempt.
    pub error: TrainError,
    /// Wall-clock seconds the failed attempt ran before the error
    /// surfaced (work + detection).
    pub attempt_wall_s: f64,
    /// Iteration the next attempt resumed from (0 = from scratch).
    pub resumed_from: usize,
    /// Completed iterations that must be re-executed because they
    /// post-date the restored checkpoint — the Young/Daly "lost work".
    pub lost_iterations: usize,
    /// Seconds spent validating and loading the durable checkpoint.
    pub restore_s: f64,
    /// Seconds slept in exponential backoff before the restart.
    pub backoff_s: f64,
    /// Whether the restore had to reshard a canonical layout because the
    /// stored topology differs from the running one.
    pub cross_topology: bool,
    /// Ranks the health monitor declared dead when the attempt failed
    /// (empty when health monitoring is off). For a single killed rank
    /// this names the culprit directly, without log archaeology.
    pub dead_ranks: Vec<ThreadKey>,
}

/// Everything a supervised run produced.
#[derive(Debug)]
pub struct SupervisorReport {
    /// Mean loss per iteration, stitched across attempts. Deterministic
    /// training + exact restores make these bit-identical to a fault-free
    /// run's losses.
    pub losses: Vec<f32>,
    /// Final per-thread parameters, if the job completed. Keyed by the
    /// topology the job *finished* at (the launch spec unless an elastic
    /// run ended degraded).
    pub final_params: Option<HashMap<ThreadKey, Vec<f32>>>,
    /// One entry per failure the supervisor recovered from (or died on).
    pub incidents: Vec<Incident>,
    /// Transient faults absorbed below the supervisor, one entry per
    /// attempt that absorbed any (observed via transport telemetry).
    /// These cost retries, never restarts.
    pub transient: Vec<TransientIncident>,
    /// Topology changes an elastic run performed, in order. Empty for
    /// [`Supervisor::run`].
    pub reconfigurations: Vec<Reconfiguration>,
    /// Attempts launched (1 = clean run, no failures). A grow boundary
    /// counts as a launch (it starts a new trainer world) but not a
    /// restart.
    pub attempts: usize,
    /// Checkpoint restores actually paid. The chaos harness asserts this
    /// equals the number of *fatal* faults injected — transient faults
    /// must leave it untouched.
    pub restarts: usize,
    /// The error that exhausted the budget or was classified as
    /// non-retryable, if the job did not complete.
    pub gave_up: Option<TrainError>,
    /// Total wall-clock seconds, including restores and backoff.
    pub wall_s: f64,
    /// Mean per-iteration seconds over the final successful attempt
    /// (max across threads per iteration) — the empirical "clean"
    /// iteration cost for goodput accounting. 0 if the job never
    /// completed.
    pub clean_iter_s: f64,
    /// Iterations the job was asked to run.
    pub iterations: usize,
}

impl SupervisorReport {
    /// Did the job run to completion?
    pub fn completed(&self) -> bool {
        self.final_params.is_some()
    }
}

/// The ranking cost model for a job (the simulator's elastic module),
/// parameterized by the global batch the data carries. Shared by the
/// thread-mode [`Supervisor`] and the process-mode
/// [`ProcSupervisor`](crate::proc::ProcSupervisor).
pub(crate) fn job_cost_model(
    spec: &PtdpSpec,
    model_cfg: TinyGptConfig,
    global_batch: usize,
) -> CostModel {
    let mut cm = CostModel::for_job(
        model_cfg.layers,
        model_cfg.heads,
        global_batch.max(1),
        spec.microbatch,
    );
    cm.chunks = spec.chunks;
    cm
}

/// The best valid (p, t, d) fitting `capacity` ranks, as a full spec
/// inheriting every non-topology knob from `base`. Respects the one
/// constraint the cost model cannot see: vocab-parallel runs need
/// `t | vocab`.
pub(crate) fn pick_best_spec(
    cost: &CostModel,
    base: &PtdpSpec,
    model_cfg: TinyGptConfig,
    capacity: usize,
) -> Option<PtdpSpec> {
    cost.enumerate(capacity)
        .into_iter()
        .filter(|&(_, t, _)| !base.vocab_parallel || model_cfg.vocab.is_multiple_of(t))
        .min_by(|&a, &b| {
            let (ca, cb) = (
                cost.iteration_s(a.0, a.1, a.2),
                cost.iteration_s(b.0, b.1, b.2),
            );
            ca.partial_cmp(&cb).unwrap().then(a.cmp(&b))
        })
        .map(|(p, t, d)| PtdpSpec {
            pipeline: p,
            tensor: t,
            data: d,
            ..*base
        })
}

/// Auto-recovery wrapper around [`PtdpTrainer`]: train, and on failure
/// restore from the durable store and retry until the job completes or
/// the restart budget runs out. [`Supervisor::run_elastic`] additionally
/// reshapes (p, t, d) to fit surviving capacity.
pub struct Supervisor {
    master: GptModel,
    spec: PtdpSpec,
    model_cfg: TinyGptConfig,
    store: Arc<CheckpointStore>,
    cfg: SupervisorConfig,
    telemetry: Option<Arc<TelemetrySink>>,
    transport: TransportConfig,
    health_period: Option<Duration>,
}

impl Supervisor {
    /// Build a supervisor for training `master` under `spec`, durably
    /// checkpointing into `store`.
    pub fn new(
        master: GptModel,
        spec: PtdpSpec,
        store: Arc<CheckpointStore>,
        cfg: SupervisorConfig,
    ) -> Supervisor {
        assert!(cfg.checkpoint_every > 0, "checkpoint interval must be > 0");
        // Validate the launch spec eagerly (same asserts a trainer build
        // would raise, but at supervisor construction time).
        let _ = PtdpTrainer::new(master.clone(), spec);
        let model_cfg = master.cfg;
        Supervisor {
            master,
            spec,
            model_cfg,
            store,
            cfg,
            telemetry: None,
            transport: TransportConfig::default(),
            health_period: None,
        }
    }

    /// Attach a telemetry sink: every attempt's rank threads trace into it
    /// (spans tagged with the attempt as their incident epoch), and the
    /// supervisor itself publishes `supervisor_incidents` /
    /// `supervisor_restarts` counters (plus `supervisor_reconfigurations`
    /// / `supervisor_shrinks` / `supervisor_grows` and per-topology
    /// `supervisor_iters_p*_t*_d*` iteration counters for elastic runs).
    pub fn with_telemetry(mut self, sink: Arc<TelemetrySink>) -> Supervisor {
        self.telemetry = Some(sink);
        self
    }

    /// Wire configuration for every attempt's communicator groups: the
    /// reliable retry layer and/or seeded transient-fault injection (the
    /// chaos harness's lever). Transient faults the retry layer absorbs
    /// surface as [`TransientIncident`]s, not restarts.
    pub fn with_transport(mut self, transport: TransportConfig) -> Supervisor {
        self.transport = transport;
        self
    }

    /// Enable heartbeat health monitoring: each attempt gets a fresh
    /// [`HealthMonitor`] with this expected beat period (one beat per
    /// training iteration), and failed attempts record which ranks were
    /// dead in [`Incident::dead_ranks`].
    pub fn with_health(mut self, period: Duration) -> Supervisor {
        self.health_period = Some(period);
        self
    }

    /// Collective timeout for attempt `n`: halved per retry, floored.
    fn comm_timeout(&self, attempt: usize) -> Duration {
        let mut t = self.spec.comm_timeout;
        for _ in 0..attempt {
            t /= 2;
        }
        t.max(self.cfg.min_comm_timeout)
    }

    /// Is this error worth a restart, or is the job structurally broken?
    ///
    /// Note the name: every error that reaches the supervisor is a *fatal*
    /// fault under the [`IncidentSeverity`] taxonomy (transient faults are
    /// absorbed by the transport's retry layer and never surface). This
    /// predicate decides whether a fatal fault is *restartable* — worth
    /// paying a checkpoint restore for — or structural.
    fn is_restartable(e: &TrainError) -> bool {
        matches!(
            e,
            TrainError::Killed(_) | TrainError::Comm(_) | TrainError::PipelineBroken(_)
        )
    }

    /// Transient faults `sink` has tallied so far (retries, retransmits,
    /// duplicates), for delta-ing around an attempt.
    fn transient_tally(sink: &TelemetrySink) -> (u64, u64, u64) {
        (
            sink.metrics.counter("transport_retries").get(),
            sink.metrics.counter("transport_retransmits").get(),
            sink.metrics.counter("transport_duplicates_dropped").get(),
        )
    }

    /// The ranking cost model for this job (the simulator's elastic
    /// module), parameterized by the global batch the data carries.
    fn cost_model(&self, global_batch: usize) -> CostModel {
        job_cost_model(&self.spec, self.model_cfg, global_batch)
    }

    /// The best valid (p, t, d) fitting `capacity` ranks, as a full spec
    /// inheriting every non-topology knob from the launch spec.
    fn best_spec(&self, cost: &CostModel, capacity: usize) -> Option<PtdpSpec> {
        pick_best_spec(cost, &self.spec, self.model_cfg, capacity)
    }

    /// Carry fault-injection points across a topology change: a kill aimed
    /// at a rank of the old world lands on `flat % new_world` of the new.
    fn remap_kills(pending: &mut [KillSwitch], from: &PtdpSpec, to: &PtdpSpec) {
        for kp in pending.iter_mut() {
            let flat = from.flat_rank(kp.thread);
            kp.thread = to.thread_key(flat % to.world());
        }
    }

    fn dims(spec: &PtdpSpec) -> (usize, usize, usize) {
        (spec.pipeline, spec.tensor, spec.data)
    }

    /// Publish a reconfiguration to telemetry: counters plus a span on a
    /// synthetic control-plane rank (one past the launch world, so it can
    /// never collide with a real rank's trace).
    fn trace_reconfiguration(&self, rc: &Reconfiguration, epoch: usize, start_ns: u64) {
        let Some(sink) = &self.telemetry else { return };
        sink.metrics.counter("supervisor_reconfigurations").inc();
        sink.metrics
            .counter(match rc.direction {
                ReconfigureDirection::Shrink => "supervisor_shrinks",
                ReconfigureDirection::Grow => "supervisor_grows",
            })
            .inc();
        let mut tracer = sink.hub.tracer(self.spec.world(), (usize::MAX, 0, 0));
        tracer.close(
            SpanKind::Checkpoint,
            match rc.direction {
                ReconfigureDirection::Shrink => "reconfigure-shrink",
                ReconfigureDirection::Grow => "reconfigure-grow",
            },
            start_ns,
            rc.at_iter,
            epoch,
            SpanArgs::NONE,
        );
    }

    /// Count iterations executed under a topology (the per-topology-epoch
    /// counter: how much work each shape of the job did).
    fn count_topology_iters(&self, spec: &PtdpSpec, iters: usize) {
        if iters == 0 {
            return;
        }
        if let Some(sink) = &self.telemetry {
            let (p, t, d) = Self::dims(spec);
            sink.metrics
                .counter(&format!("supervisor_iters_p{p}_t{t}_d{d}"))
                .add(iters as u64);
        }
    }

    /// Run the full `data` schedule to completion, restarting through
    /// failures at a fixed topology. `kills` are fault-injection points
    /// (at most one is armed per attempt — the earliest one at or after
    /// the attempt's resume iteration, mirroring one GPU death at a time).
    pub fn run(&self, data: &[(Vec<usize>, Vec<usize>)], kills: &[KillSwitch]) -> SupervisorReport {
        self.run_inner(data, kills, &[], false)
    }

    /// Like [`Supervisor::run`], but elastic: fatal incidents shrink the
    /// topology to the best configuration fitting surviving capacity, and
    /// [`CapacityEvent::Returned`] grows it back at the next checkpoint
    /// boundary. `capacity` is the seeded schedule of losses/repairs.
    pub fn run_elastic(
        &self,
        data: &[(Vec<usize>, Vec<usize>)],
        kills: &[KillSwitch],
        capacity: &[CapacityEvent],
    ) -> SupervisorReport {
        self.run_inner(data, kills, capacity, true)
    }

    fn run_inner(
        &self,
        data: &[(Vec<usize>, Vec<usize>)],
        kills: &[KillSwitch],
        capacity_events: &[CapacityEvent],
        elastic: bool,
    ) -> SupervisorReport {
        let t0 = Instant::now();
        let mut pending: Vec<KillSwitch> = kills.to_vec();
        pending.sort_by_key(|k| k.iteration);
        let mut lost: Vec<(usize, usize)> = capacity_events
            .iter()
            .filter_map(|e| match e {
                CapacityEvent::Lost { iteration, ranks } => Some((*iteration, *ranks)),
                _ => None,
            })
            .collect();
        lost.sort_unstable();
        let mut returns: Vec<(usize, usize)> = capacity_events
            .iter()
            .filter_map(|e| match e {
                CapacityEvent::Returned { iteration, ranks } => Some((*iteration, *ranks)),
                _ => None,
            })
            .collect();
        returns.sort_unstable();

        let launch = self.spec;
        let mut cur_spec = launch;
        let mut capacity = launch.world();
        let global_batch = data
            .first()
            .map_or(1, |(toks, _)| toks.len() / self.model_cfg.seq);
        let cost = self.cost_model(global_batch);

        let mut losses = vec![0.0f32; data.len()];
        let mut incidents: Vec<Incident> = Vec::new();
        let mut transient: Vec<TransientIncident> = Vec::new();
        let mut reconfigurations: Vec<Reconfiguration> = Vec::new();
        let mut restarts = 0usize;
        let mut restore: Option<TrainSnapshot> = None;
        let mut final_params = None;
        let mut gave_up = None;
        let mut attempts;
        let mut clean_iter_s = 0.0;
        let mut last_error: Option<TrainError> = None;
        // Two counters, one job: `attempt` numbers every world launched
        // (it is the telemetry/incident epoch), `fatal_restarts` counts
        // only failures — a planned grow launches a new world without
        // consuming restart budget or escalating the backoff.
        let mut attempt = 0usize;
        let mut fatal_restarts = 0usize;

        loop {
            attempts = attempt + 1;
            let start_iter = restore.as_ref().map_or(0, |s| s.next_iter);
            let k = self.cfg.checkpoint_every;
            // Grow only at a checkpoint boundary: a degraded segment with
            // repaired capacity scheduled is truncated at the first
            // boundary at/after the return point, which durably commits
            // that generation for the grown world to reshard from.
            let stop = if elastic && cur_spec.world() < launch.world() {
                match returns.first() {
                    Some(&(r_iter, _)) => {
                        let boundary = r_iter.max(start_iter + 1).div_ceil(k) * k;
                        boundary.min(data.len())
                    }
                    None => data.len(),
                }
            } else {
                data.len()
            };

            let armed = pending
                .iter()
                .position(|kp| kp.iteration >= start_iter && kp.iteration < stop);
            let kill = armed.map(|i| pending[i]);

            // Fresh monitor per attempt: a restarted world starts with a
            // clean liveness slate.
            let health = self.health_period.map(|p| HealthMonitor::new(&cur_spec, p));
            // Transport counters are cumulative across attempts in the
            // sink; delta around the attempt to attribute absorbed faults.
            let tally_before = self.telemetry.as_deref().map(Self::transient_tally);

            let trainer = PtdpTrainer::new(self.master.clone(), cur_spec);
            let ctl = RunControl {
                checkpoint_every: Some(k),
                restore: restore.take(),
                kill,
                comm_timeout: Some(self.comm_timeout(fatal_restarts)),
                durable: Some(Arc::clone(&self.store)),
                // The attempt index is the incident epoch: step samples and
                // spans from a resumed run are distinguishable from the
                // pre-failure ones even at the same iteration number.
                epoch: attempt,
                telemetry: self.telemetry.clone(),
                transport: self.transport,
                health: health.clone(),
                on_beat: None,
            };
            let attempt_t0 = Instant::now();
            let out = trainer.train_with(&data[..stop], ctl);
            let attempt_wall_s = attempt_t0.elapsed().as_secs_f64();

            if let (Some(sink), Some((r0, x0, d0))) = (self.telemetry.as_deref(), tally_before) {
                let (r1, x1, d1) = Self::transient_tally(sink);
                if r1 > r0 || x1 > x0 || d1 > d0 {
                    sink.metrics.counter("supervisor_transient_incidents").inc();
                    transient.push(TransientIncident {
                        attempt,
                        retries: r1 - r0,
                        retransmits: x1 - x0,
                        duplicates_dropped: d1 - d0,
                    });
                }
            }
            let dead_ranks = match (&out.error, &health) {
                (Some(_), Some(mon)) => mon.classify(self.cfg.slow_threshold).dead(),
                _ => Vec::new(),
            };

            match out.error {
                None if stop == data.len() => {
                    // Completed: take the tail of the losses and the final
                    // weights, and measure the clean iteration cost.
                    losses[start_iter..].copy_from_slice(&out.log.losses[start_iter..]);
                    let executed = data.len() - start_iter;
                    if executed > 0 {
                        // Samples are keyed by (epoch, iteration), so a
                        // restarted attempt's timings land in the right
                        // slot instead of zipping by push order (which
                        // drifted after a mid-run restore).
                        let mut per_iter = vec![0.0f64; executed];
                        for samples in out.log.step_times.values() {
                            for s in samples {
                                if s.epoch == attempt && s.iteration >= start_iter {
                                    let slot = &mut per_iter[s.iteration - start_iter];
                                    *slot = slot.max(s.seconds);
                                }
                            }
                        }
                        clean_iter_s = per_iter.iter().sum::<f64>() / executed as f64;
                    }
                    self.count_topology_iters(&cur_spec, executed);
                    final_params = Some(out.log.final_params);
                    break;
                }
                None => {
                    // Reached a grow boundary: generation `stop` is durably
                    // committed. Credit the repaired capacity and reshard
                    // up — to the launch topology when everything is back,
                    // else to the best shape the ledger allows.
                    losses[start_iter..stop].copy_from_slice(&out.log.losses[start_iter..stop]);
                    self.count_topology_iters(&cur_spec, stop - start_iter);
                    while returns.first().is_some_and(|&(ri, _)| ri <= stop) {
                        let (_, ranks) = returns.remove(0);
                        capacity = (capacity + ranks).min(launch.world());
                    }
                    let target = if capacity >= launch.world() {
                        Some(launch)
                    } else {
                        self.best_spec(&cost, capacity)
                    };
                    match target {
                        Some(tspec) if Self::dims(&tspec) != Self::dims(&cur_spec) => {
                            let span_t0 = self.telemetry.as_ref().map_or(0, |s| s.hub.now_ns());
                            let restore_t0 = Instant::now();
                            match self.store.load_latest(&tspec, self.model_cfg) {
                                Ok(r) => {
                                    let rc = Reconfiguration {
                                        at_iter: stop,
                                        generation: r.generation,
                                        from: Self::dims(&cur_spec),
                                        to: Self::dims(&tspec),
                                        direction: ReconfigureDirection::Grow,
                                        capacity,
                                        restore_s: restore_t0.elapsed().as_secs_f64(),
                                    };
                                    self.trace_reconfiguration(&rc, attempt, span_t0);
                                    reconfigurations.push(rc);
                                    Self::remap_kills(&mut pending, &cur_spec, &tspec);
                                    cur_spec = tspec;
                                    restore = Some(r.snapshot);
                                }
                                Err(_) => {
                                    // Can't reshard up (e.g. the store only
                                    // has ZeRO-sharded generations): stay
                                    // degraded and stop trying to grow.
                                    returns.clear();
                                    restore = self
                                        .store
                                        .load_latest(&cur_spec, self.model_cfg)
                                        .ok()
                                        .map(|r| r.snapshot);
                                }
                            }
                        }
                        _ => {
                            // Capacity came back but the best shape is the
                            // one already running: resume in place.
                            restore = self
                                .store
                                .load_latest(&cur_spec, self.model_cfg)
                                .ok()
                                .map(|r| r.snapshot);
                        }
                    }
                    attempt += 1;
                }
                Some(e) if Self::is_restartable(&e) && fatal_restarts < self.cfg.max_restarts => {
                    // The armed kill has fired; it must not re-arm after
                    // the restart.
                    if let Some(i) = armed {
                        pending.remove(i);
                    }
                    // The kill iteration bounds what the attempt reached.
                    let reached = kill.map_or(start_iter, |kp| kp.iteration);
                    if elastic {
                        // Debit the capacity ledger: the incident's own
                        // dead ranks (at least one when a kill fired),
                        // plus any scheduled losses up to the failure.
                        if kill.is_some() || !dead_ranks.is_empty() {
                            capacity = capacity.saturating_sub(dead_ranks.len().max(1));
                        }
                        while lost.first().is_some_and(|&(li, _)| li <= reached) {
                            let (_, ranks) = lost.remove(0);
                            capacity = capacity.saturating_sub(ranks);
                        }
                    }

                    // Pick where the next attempt runs: shrunken when the
                    // survivors no longer fit the current world.
                    let shrink_to = if elastic && capacity < cur_spec.world() {
                        match self.best_spec(&cost, capacity) {
                            Some(t) => Some(t),
                            None => {
                                // Nothing valid fits the survivors: the
                                // job is out of cluster.
                                if let Some(sink) = &self.telemetry {
                                    sink.metrics.counter("supervisor_incidents").inc();
                                }
                                incidents.push(Incident {
                                    severity: IncidentSeverity::Fatal,
                                    attempt,
                                    error: e.clone(),
                                    attempt_wall_s,
                                    resumed_from: 0,
                                    lost_iterations: 0,
                                    restore_s: 0.0,
                                    backoff_s: 0.0,
                                    cross_topology: false,
                                    dead_ranks,
                                });
                                gave_up = Some(e);
                                break;
                            }
                        }
                    } else {
                        None
                    };

                    let restore_t0 = Instant::now();
                    let span_t0 = self.telemetry.as_ref().map_or(0, |s| s.hub.now_ns());
                    let (restored, to_spec) = match shrink_to {
                        Some(tspec) => match self.store.load_latest(&tspec, self.model_cfg) {
                            Ok(r) => (Some(r), tspec),
                            // No durable generation yet: restart from
                            // scratch, already at the shrunken shape.
                            Err(CheckpointError::NoneAvailable) => (None, tspec),
                            // Reshard unavailable (ZeRO-sharded store):
                            // fall back to retrying the current topology
                            // rather than aborting — the budget bounds how
                            // long that can go on.
                            Err(_) => (
                                self.store.load_latest(&cur_spec, self.model_cfg).ok(),
                                cur_spec,
                            ),
                        },
                        None => match self.store.load_latest(&cur_spec, self.model_cfg) {
                            Ok(r) => (Some(r), cur_spec),
                            Err(_) => (None, cur_spec),
                        },
                    };
                    let restore_s = restore_t0.elapsed().as_secs_f64();
                    let resumed_from = restored.as_ref().map_or(0, |r| r.snapshot.next_iter);
                    let cross_topology = restored.as_ref().is_some_and(|r| r.cross_topology);
                    // Iterations completed in this attempt but after the
                    // restored checkpoint will be re-executed: lost work.
                    let lost_iterations = reached.saturating_sub(resumed_from);

                    // Losses up to the resume point are final — the next
                    // attempt recomputes everything after it.
                    let safe = resumed_from.max(start_iter);
                    losses[start_iter..safe].copy_from_slice(&out.log.losses[start_iter..safe]);
                    self.count_topology_iters(&cur_spec, reached.saturating_sub(start_iter));

                    if Self::dims(&to_spec) != Self::dims(&cur_spec) {
                        let rc = Reconfiguration {
                            at_iter: reached,
                            generation: restored.as_ref().map_or(0, |r| r.generation),
                            from: Self::dims(&cur_spec),
                            to: Self::dims(&to_spec),
                            direction: ReconfigureDirection::Shrink,
                            capacity,
                            restore_s,
                        };
                        self.trace_reconfiguration(&rc, attempt, span_t0);
                        reconfigurations.push(rc);
                        Self::remap_kills(&mut pending, &cur_spec, &to_spec);
                        cur_spec = to_spec;
                    }

                    let backoff = self
                        .cfg
                        .backoff_base
                        .saturating_mul(1u32 << fatal_restarts.min(20))
                        .min(self.cfg.backoff_max);
                    std::thread::sleep(backoff);

                    if let Some(sink) = &self.telemetry {
                        sink.metrics.counter("supervisor_incidents").inc();
                        sink.metrics.counter("supervisor_restarts").inc();
                    }
                    restarts += 1;
                    incidents.push(Incident {
                        severity: IncidentSeverity::Fatal,
                        attempt,
                        error: e.clone(),
                        attempt_wall_s,
                        resumed_from,
                        lost_iterations,
                        restore_s,
                        backoff_s: backoff.as_secs_f64(),
                        cross_topology,
                        dead_ranks,
                    });
                    last_error = Some(e);
                    restore = restored.map(|r| r.snapshot);
                    fatal_restarts += 1;
                    attempt += 1;
                }
                Some(e) => {
                    // Non-retryable, or the budget is spent.
                    if let Some(sink) = &self.telemetry {
                        sink.metrics.counter("supervisor_incidents").inc();
                    }
                    incidents.push(Incident {
                        severity: IncidentSeverity::Fatal,
                        attempt,
                        error: e.clone(),
                        attempt_wall_s,
                        resumed_from: 0,
                        lost_iterations: 0,
                        restore_s: 0.0,
                        backoff_s: 0.0,
                        cross_topology: false,
                        dead_ranks,
                    });
                    gave_up = Some(e);
                    break;
                }
            }
        }
        if final_params.is_none() && gave_up.is_none() {
            gave_up = last_error;
        }

        SupervisorReport {
            losses,
            final_params,
            incidents,
            transient,
            reconfigurations,
            attempts,
            restarts,
            gave_up,
            wall_s: t0.elapsed().as_secs_f64(),
            clean_iter_s,
            iterations: data.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use std::fs;
    use std::path::PathBuf;

    fn cfg() -> TinyGptConfig {
        TinyGptConfig {
            vocab: 13,
            seq: 6,
            hidden: 8,
            heads: 4,
            layers: 2,
        }
    }

    fn make_data(
        c: TinyGptConfig,
        batch: usize,
        iters: usize,
        seed: u64,
    ) -> Vec<(Vec<usize>, Vec<usize>)> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..iters)
            .map(|_| {
                let toks: Vec<usize> = (0..batch * c.seq)
                    .map(|_| rng.gen_range(0..c.vocab))
                    .collect();
                let tgts: Vec<usize> = (0..batch * c.seq)
                    .map(|_| rng.gen_range(0..c.vocab))
                    .collect();
                (toks, tgts)
            })
            .collect()
    }

    fn tmp_root(name: &str) -> PathBuf {
        let root = std::env::temp_dir().join(format!("mgsup-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        root
    }

    fn fast_cfg() -> SupervisorConfig {
        SupervisorConfig {
            backoff_base: Duration::from_millis(1),
            backoff_max: Duration::from_millis(5),
            ..SupervisorConfig::default()
        }
    }

    #[test]
    fn recovers_from_one_kill_bit_identically() {
        let c = cfg();
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let master = GptModel::new(c, &mut rng);
        let data = make_data(c, 4, 8, 77);
        let spec = PtdpSpec::new(2, 1, 2);

        let clean = PtdpTrainer::new(master.clone(), spec).train(&data);

        let root = tmp_root("onekill");
        let store = CheckpointStore::open(&root).unwrap();
        let sup = Supervisor::new(master, spec, store, fast_cfg());
        let kills = [KillSwitch {
            thread: (1, 0, 0),
            iteration: 5,
        }];
        let report = sup.run(&data, &kills);

        assert!(report.completed(), "gave up: {:?}", report.gave_up);
        assert_eq!(report.attempts, 2);
        assert_eq!(report.incidents.len(), 1);
        assert_eq!(report.restarts, 1, "exactly one restore paid");
        assert!(
            report.reconfigurations.is_empty(),
            "non-elastic runs never reshape"
        );
        let inc = &report.incidents[0];
        assert!(Supervisor::is_restartable(&inc.error));
        assert_eq!(inc.severity, IncidentSeverity::Fatal);
        assert_eq!(inc.resumed_from, 4, "checkpoint_every=2, killed at 5");
        assert_eq!(inc.lost_iterations, 1);
        assert_eq!(report.losses, clean.losses, "losses must be bit-identical");
        assert_eq!(
            report.final_params.as_ref().unwrap(),
            &clean.final_params,
            "final weights must be bit-identical"
        );
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn exhausts_restart_budget_and_gives_up() {
        let c = cfg();
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let master = GptModel::new(c, &mut rng);
        let data = make_data(c, 2, 6, 99);
        let spec = PtdpSpec::new(1, 1, 2);

        let root = tmp_root("budget");
        let store = CheckpointStore::open(&root).unwrap();
        let sup = Supervisor::new(
            master,
            spec,
            store,
            SupervisorConfig {
                max_restarts: 1,
                ..fast_cfg()
            },
        );
        // More kills than the budget allows.
        let kills: Vec<KillSwitch> = (1..4)
            .map(|i| KillSwitch {
                thread: (0, 1, 0),
                iteration: i,
            })
            .collect();
        let report = sup.run(&data, &kills);
        assert!(!report.completed());
        assert_eq!(report.attempts, 2);
        assert!(report.gave_up.is_some());
        assert_eq!(report.incidents.len(), 2);
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn retry_shortens_comm_timeout_with_floor() {
        let c = cfg();
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let master = GptModel::new(c, &mut rng);
        let mut spec = PtdpSpec::new(1, 1, 1);
        spec.comm_timeout = Duration::from_secs(8);
        let store = CheckpointStore::open(tmp_root("timeout")).unwrap();
        let sup = Supervisor::new(
            master,
            spec,
            store,
            SupervisorConfig {
                min_comm_timeout: Duration::from_secs(3),
                ..SupervisorConfig::default()
            },
        );
        assert_eq!(sup.comm_timeout(0), Duration::from_secs(8));
        assert_eq!(sup.comm_timeout(1), Duration::from_secs(4));
        assert_eq!(sup.comm_timeout(2), Duration::from_secs(3), "floored");
        let _ = fs::remove_dir_all(sup.store.root());
    }

    #[test]
    fn flat_rank_roundtrips_thread_key() {
        let spec = PtdpSpec::new(2, 2, 2);
        for r in 0..spec.world() {
            assert_eq!(spec.flat_rank(spec.thread_key(r)), r);
        }
    }

    #[test]
    fn best_spec_fits_capacity_and_inherits_knobs() {
        let c = cfg();
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let master = GptModel::new(c, &mut rng);
        let mut spec = PtdpSpec::new(2, 2, 2);
        spec.microbatch = 2;
        spec.lr = 0.042;
        let store = CheckpointStore::open(tmp_root("bestspec")).unwrap();
        let sup = Supervisor::new(master, spec, store, SupervisorConfig::default());
        let cost = sup.cost_model(16);
        let best = sup.best_spec(&cost, 7).expect("a config fits 7 ranks");
        assert!(best.world() <= 7);
        assert_eq!(best.lr, 0.042, "non-topology knobs inherited");
        assert_eq!(best.microbatch, 2);
        assert!(sup.best_spec(&cost, 0).is_none(), "nothing fits zero GPUs");
        let _ = fs::remove_dir_all(sup.store.root());
    }
}
