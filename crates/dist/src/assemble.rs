//! Reassemble a full serial model from the shards a PTD-P training run
//! leaves behind — the practical counterpart of §5.10's checkpointing:
//! every thread's final parameters (as recorded in
//! [`TrainLog::final_params`](crate::TrainLog)) are merged back into one
//! [`GptModel`] that can be saved with `megatron_tensor::checkpoint`,
//! evaluated, or used to seed a differently-parallelized continuation run.

use megatron_tensor::gpt::{Block, GptModel, TinyGptConfig};
use megatron_tensor::layers::Linear;
use megatron_tensor::Matrix;
use rand::SeedableRng;

use crate::trainer::{PtdpSpec, ThreadKey, TrainLog};

/// Inverse of `shard::shard_columns`: concatenate column shards.
fn unshard_columns(shards: &[&Linear]) -> Linear {
    let ws: Vec<Matrix> = shards.iter().map(|l| l.w.clone()).collect();
    let w = Matrix::concat_cols(&ws);
    let b = shards[0].b.as_ref().map(|_| {
        shards
            .iter()
            .flat_map(|l| l.b.as_ref().expect("consistent bias").clone())
            .collect::<Vec<f32>>()
    });
    let (rows, cols) = (w.rows(), w.cols());
    Linear {
        w,
        b,
        gw: Matrix::zeros(rows, cols),
        gb: vec![0.0; cols],
    }
}

/// Inverse of `shard::shard_rows` / `shard_proj`: stack row shards; the
/// replicated bias is supplied separately.
fn unshard_rows(shards: &[&Linear], bias: Option<Vec<f32>>) -> Linear {
    let ws: Vec<Matrix> = shards.iter().map(|l| l.w.clone()).collect();
    let w = Matrix::concat_rows(&ws);
    let (rows, cols) = (w.rows(), w.cols());
    Linear {
        w,
        b: bias,
        gw: Matrix::zeros(rows, cols),
        gb: vec![0.0; cols],
    }
}

/// Inverse of `shard::shard_qkv`: each rank's `[q_r | k_r | v_r]` shard is
/// split into its three sections and the sections concatenated rank-major.
fn unshard_qkv(shards: &[&Linear]) -> Linear {
    let t = shards.len();
    let local = shards[0].w.cols() / 3;
    let mut sections: Vec<Vec<Matrix>> = (0..3).map(|_| Vec::with_capacity(t)).collect();
    let mut bias_sections: Vec<Vec<f32>> = vec![Vec::new(); 3];
    for l in shards {
        for sec in 0..3 {
            sections[sec].push(l.w.columns(sec * local, (sec + 1) * local));
            if let Some(b) = &l.b {
                bias_sections[sec].extend_from_slice(&b[sec * local..(sec + 1) * local]);
            }
        }
    }
    let parts: Vec<Matrix> = sections
        .into_iter()
        .map(|s| Matrix::concat_cols(&s))
        .collect();
    let w = Matrix::concat_cols(&parts);
    let b = shards[0]
        .b
        .is_some()
        .then(|| bias_sections.into_iter().flatten().collect::<Vec<f32>>());
    let (rows, cols) = (w.rows(), w.cols());
    Linear {
        w,
        b,
        gw: Matrix::zeros(rows, cols),
        gb: vec![0.0; cols],
    }
}

/// Merge per-thread flat parameter vectors (one per `(pi, ti)` shard, in
/// each thread's canonical visit order) back into one serial [`GptModel`].
/// The same machinery unshards *any* vector positionally aligned with the
/// parameters — the durable checkpoint layer feeds it Adam moment vectors
/// to build the canonical cross-topology layout.
pub(crate) fn assemble_from_flat(
    cfg: TinyGptConfig,
    spec: &PtdpSpec,
    flat_of: &mut dyn FnMut(usize, usize) -> Vec<f32>,
) -> GptModel {
    let (p, t, v) = (spec.pipeline, spec.tensor, spec.chunks);
    let stages = p * v;
    let layers_per_stage = cfg.layers / stages;

    // Rebuild each thread's structured shard from its flat parameters.
    let mut rng = rand::rngs::StdRng::seed_from_u64(0);
    let template = GptModel::new(cfg, &mut rng);
    let mut thread_models: std::collections::HashMap<(usize, usize), crate::trainer::ThreadModel> =
        std::collections::HashMap::new();
    for pi in 0..p {
        for ti in 0..t {
            let flat = flat_of(pi, ti);
            let mut tm = crate::trainer::build_thread_model(&template, spec, pi, ti);
            let mut off = 0usize;
            tm.visit_params(&mut |params| {
                params.copy_from_slice(&flat[off..off + params.len()]);
                off += params.len();
            });
            assert_eq!(off, flat.len(), "thread ({pi},{ti}) shard size mismatch");
            thread_models.insert((pi, ti), tm);
        }
    }

    // Blocks: layer l lives on stage l / layers_per_stage.
    let blocks: Vec<Block> = (0..cfg.layers)
        .map(|l| {
            let stage = l / layers_per_stage;
            let (pi, c) = (stage % p, stage / p);
            let pos = l % layers_per_stage;
            let shards: Vec<&crate::block::ParallelBlock> = (0..t)
                .map(|ti| &thread_models[&(pi, ti)].chunks[c][pos])
                .collect();
            let qkv_parts: Vec<&Linear> = shards.iter().map(|s| &s.qkv).collect();
            let proj_parts: Vec<&Linear> = shards.iter().map(|s| &s.proj).collect();
            let fc1_parts: Vec<&Linear> = shards.iter().map(|s| &s.fc1).collect();
            let fc2_parts: Vec<&Linear> = shards.iter().map(|s| &s.fc2).collect();
            Block::from_parts(
                shards[0].ln1.clone(),
                unshard_qkv(&qkv_parts),
                unshard_rows(&proj_parts, Some(shards[0].proj_bias.clone())),
                shards[0].ln2.clone(),
                unshard_columns(&fc1_parts),
                unshard_rows(&fc2_parts, Some(shards[0].fc2_bias.clone())),
                cfg.heads,
            )
        })
        .collect();

    // Embedding (stage 0, device 0) and head (last stage, device p−1).
    let embed = {
        let shards: Vec<&crate::trainer::EmbedShard> = (0..t)
            .map(|ti| thread_models[&(0, ti)].embed.as_ref().expect("embed"))
            .collect();
        crate::trainer::EmbedShard::assemble(&shards)
    };
    let last_dev = (stages - 1) % p;
    let (final_ln, lm_head) = {
        let shards: Vec<&crate::trainer::HeadShard> = (0..t)
            .map(|ti| thread_models[&(last_dev, ti)].head.as_ref().expect("head"))
            .collect();
        crate::trainer::HeadShard::assemble(&shards)
    };

    GptModel {
        cfg,
        embed,
        blocks,
        final_ln,
        lm_head,
    }
}

impl TrainLog {
    /// Merge the final shards of a finished run back into one serial
    /// [`GptModel`]. Uses the data-parallel replica 0 (all replicas are
    /// verified identical by the trainer's collectives).
    pub fn assemble(&self, cfg: TinyGptConfig, spec: &PtdpSpec) -> GptModel {
        assemble_from_flat(cfg, spec, &mut |pi, ti| {
            let key: ThreadKey = (pi, 0, ti);
            self.final_params
                .get(&key)
                .unwrap_or_else(|| panic!("missing shard for thread {key:?}"))
                .clone()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PtdpSpec, PtdpTrainer};
    use megatron_tensor::Adam;
    use rand::Rng;

    fn cfg() -> TinyGptConfig {
        TinyGptConfig {
            vocab: 16,
            seq: 6,
            hidden: 8,
            heads: 4,
            layers: 4,
        }
    }

    fn data(c: TinyGptConfig, batch: usize, iters: usize) -> Vec<(Vec<usize>, Vec<usize>)> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(404);
        (0..iters)
            .map(|_| {
                let toks: Vec<usize> = (0..batch * c.seq)
                    .map(|_| rng.gen_range(0..c.vocab))
                    .collect();
                let tgts: Vec<usize> = (0..batch * c.seq)
                    .map(|_| rng.gen_range(0..c.vocab))
                    .collect();
                (toks, tgts)
            })
            .collect()
    }

    fn serial_train(master: &GptModel, d: &[(Vec<usize>, Vec<usize>)], lr: f32) -> GptModel {
        let mut model = master.clone();
        let mut adam = Adam::new(lr);
        let batch = d[0].0.len() / model.cfg.seq;
        for (toks, tgts) in d {
            model.zero_grads();
            model.loss_and_grad(toks, tgts, batch);
            let mut pairs = model.param_grad_pairs();
            adam.step(&mut pairs);
        }
        model
    }

    fn max_param_diff(a: &mut GptModel, b: &mut GptModel) -> f32 {
        let mut av = Vec::new();
        a.visit(&mut |p, _| av.extend_from_slice(p));
        let mut bv = Vec::new();
        b.visit(&mut |p, _| bv.extend_from_slice(p));
        assert_eq!(av.len(), bv.len());
        av.iter()
            .zip(&bv)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0f32, f32::max)
    }

    #[test]
    fn assembled_model_matches_serial_training() {
        let c = cfg();
        let mut rng = rand::rngs::StdRng::seed_from_u64(88);
        let master = GptModel::new(c, &mut rng);
        let d = data(c, 4, 3);
        let mut spec = PtdpSpec::new(2, 2, 1);
        spec.chunks = 2;
        spec.schedule = megatron_schedule::ScheduleKind::Interleaved { chunks: 2 };
        let mut serial = serial_train(&master, &d, spec.lr);
        let log = PtdpTrainer::new(master, spec).train(&d);
        let mut assembled = log.assemble(c, &spec);
        let diff = max_param_diff(&mut serial, &mut assembled);
        assert!(diff < 5e-3, "assembled model diverged by {diff}");
    }

    #[test]
    fn assembled_vocab_parallel_model_matches_serial() {
        let c = cfg();
        let mut rng = rand::rngs::StdRng::seed_from_u64(89);
        let master = GptModel::new(c, &mut rng);
        let d = data(c, 4, 3);
        let mut spec = PtdpSpec::new(2, 4, 1);
        spec.vocab_parallel = true;
        let mut serial = serial_train(&master, &d, spec.lr);
        let log = PtdpTrainer::new(master, spec).train(&d);
        let mut assembled = log.assemble(c, &spec);
        let diff = max_param_diff(&mut serial, &mut assembled);
        assert!(diff < 5e-3, "assembled model diverged by {diff}");
    }

    #[test]
    fn assembled_model_roundtrips_through_checkpoint_and_resumes() {
        // Train under PTD-P, assemble, save/load with
        // megatron_tensor::checkpoint, continue training serially: the end
        // state matches training serially all the way (within f32 drift).
        let c = cfg();
        let mut rng = rand::rngs::StdRng::seed_from_u64(90);
        let master = GptModel::new(c, &mut rng);
        let d = data(c, 4, 6);
        let spec = PtdpSpec::new(2, 2, 1);

        let log = PtdpTrainer::new(master.clone(), spec).train(&d[..3]);
        let mut assembled = log.assemble(c, &spec);
        let mut buf = Vec::new();
        megatron_tensor::checkpoint::save(&mut assembled, &mut buf).unwrap();
        let restored = megatron_tensor::checkpoint::load(&mut buf.as_slice()).unwrap();

        // Resume serially (fresh Adam on both sides, so the comparison is
        // fair — optimizer state is not checkpointed).
        let mut resumed = serial_train(&restored, &d[3..], spec.lr);
        let half_serial = serial_train(&master, &d[..3], spec.lr);
        let mut full_serial = serial_train(&half_serial, &d[3..], spec.lr);
        let diff = max_param_diff(&mut resumed, &mut full_serial);
        assert!(diff < 1e-2, "resumed training diverged by {diff}");
    }
}
