//! Heartbeat-based rank health monitoring.
//!
//! At PTD-P scale the expensive failure-handling question is not "did
//! something go wrong?" but "is this rank *dead* or merely *slow*?" — the
//! answers demand responses three orders of magnitude apart in cost
//! (checkpoint-restore vs. nothing, see `fault::GoodputModel`). The
//! [`HealthMonitor`] answers it from per-rank liveness beacons: every rank
//! thread beats once per training iteration (its natural heartbeat
//! period), and [`HealthMonitor::classify`] splits the world into
//!
//! - **dead** — no beat within `dead_after` (default 4× the expected
//!   period): only these justify the supervisor's fatal-incident path;
//! - **slow** — beating, but at an interval more than `threshold ×` the
//!   median rank's: these feed straggler reporting
//!   (`fault::StragglerReport`) and telemetry, never a restart.
//!
//! The monitor is wait-free on the hot path: a beat is two atomic stores.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::trainer::{PtdpSpec, ThreadKey};

/// Default multiple of the expected beat period after which a silent rank
/// is declared dead rather than slow.
pub const DEAD_AFTER_PERIODS: u32 = 4;

/// Default `slow_threshold` for [`HealthMonitor::classify`]: a living rank
/// whose mean beat interval exceeds 1.5× the median rank's counts as slow.
/// The value matches `fault::StragglerReport`'s convention (1.2–2.0 is the
/// usual straggler-detection band; 1.5 tolerates scheduler jitter without
/// hiding a genuinely lagging rank). Configured via
/// `SupervisorConfig::slow_threshold` rather than repeated at call sites.
pub const DEFAULT_SLOW_THRESHOLD: f64 = 1.5;

/// One rank's beacon cell.
#[derive(Debug, Default)]
struct Beacon {
    /// Nanoseconds since monitor start of the latest beat (0 = never).
    last_ns: AtomicU64,
    /// Total beats observed.
    beats: AtomicU64,
}

/// Classification of one rank by the monitor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RankCondition {
    /// Beating at a healthy interval.
    Healthy,
    /// Beating, but `factor ×` slower than the median rank.
    Slow {
        /// Mean beat interval over the median rank's.
        factor: f64,
    },
    /// No beat within the dead-after window (or never beat at all).
    Dead {
        /// How long the rank has been silent.
        silent_for: Duration,
    },
}

impl RankCondition {
    /// Is this rank dead?
    pub fn is_dead(&self) -> bool {
        matches!(self, RankCondition::Dead { .. })
    }

    /// Is this rank slow (but alive)?
    pub fn is_slow(&self) -> bool {
        matches!(self, RankCondition::Slow { .. })
    }
}

/// Snapshot produced by [`HealthMonitor::classify`].
#[derive(Debug, Clone)]
pub struct HealthReport {
    /// Every rank with its condition, in flat-rank order.
    pub ranks: Vec<(ThreadKey, RankCondition)>,
    /// Median mean-beat-interval across ranks that have beat at least
    /// twice (seconds); 0 if no rank qualifies yet.
    pub median_interval_s: f64,
}

impl HealthReport {
    /// Ranks declared dead.
    pub fn dead(&self) -> Vec<ThreadKey> {
        self.ranks
            .iter()
            .filter(|(_, c)| c.is_dead())
            .map(|(k, _)| *k)
            .collect()
    }

    /// Ranks declared slow.
    pub fn slow(&self) -> Vec<ThreadKey> {
        self.ranks
            .iter()
            .filter(|(_, c)| c.is_slow())
            .map(|(k, _)| *k)
            .collect()
    }

    /// Is every rank healthy?
    pub fn all_healthy(&self) -> bool {
        self.ranks.iter().all(|(_, c)| *c == RankCondition::Healthy)
    }
}

/// Wait-free per-rank heartbeat collector for one training world.
///
/// Share one monitor (via `Arc`) between the rank threads (each calls
/// [`HealthMonitor::beat`] once per iteration) and whoever supervises them
/// (calls [`HealthMonitor::classify`] at leisure).
#[derive(Debug)]
pub struct HealthMonitor {
    started: Instant,
    period: Duration,
    dead_after: Duration,
    keys: Vec<ThreadKey>,
    beacons: Vec<Beacon>,
}

impl HealthMonitor {
    /// A monitor for `spec`'s world with the given expected beat `period`
    /// (dead-after defaults to [`DEAD_AFTER_PERIODS`] × `period`).
    pub fn new(spec: &PtdpSpec, period: Duration) -> Arc<HealthMonitor> {
        Self::with_dead_after(spec, period, period * DEAD_AFTER_PERIODS)
    }

    /// Like [`HealthMonitor::new`] with an explicit dead-after window.
    pub fn with_dead_after(
        spec: &PtdpSpec,
        period: Duration,
        dead_after: Duration,
    ) -> Arc<HealthMonitor> {
        let world = spec.world();
        Arc::new(HealthMonitor {
            started: Instant::now(),
            period,
            dead_after,
            keys: (0..world).map(|r| spec.thread_key(r)).collect(),
            beacons: (0..world).map(|_| Beacon::default()).collect(),
        })
    }

    /// The expected beat period.
    pub fn period(&self) -> Duration {
        self.period
    }

    /// World size being monitored.
    pub fn world(&self) -> usize {
        self.keys.len()
    }

    /// Record a liveness beacon from `flat_rank`. Wait-free; called from
    /// the rank's hot loop.
    pub fn beat(&self, flat_rank: usize) {
        let now_ns = self.started.elapsed().as_nanos() as u64;
        let b = &self.beacons[flat_rank];
        // `max(1)` so "never beat" (0) stays distinguishable.
        b.last_ns.store(now_ns.max(1), Ordering::Release);
        b.beats.fetch_add(1, Ordering::Relaxed);
    }

    /// Beats observed from `flat_rank` so far.
    pub fn beats(&self, flat_rank: usize) -> u64 {
        self.beacons[flat_rank].beats.load(Ordering::Relaxed)
    }

    /// How long `flat_rank` has been silent — time since its last beat,
    /// or `None` if it never beat at all. The process-mode supervisor
    /// stamps this into incident records (detection latency evidence)
    /// and uses `None` to grant a startup grace period, since
    /// [`HealthMonitor::classify`] counts a never-beaten rank as dead.
    pub fn silence(&self, flat_rank: usize) -> Option<Duration> {
        let last = self.beacons[flat_rank].last_ns.load(Ordering::Acquire);
        if last == 0 {
            return None;
        }
        let now_ns = self.started.elapsed().as_nanos() as u64;
        Some(Duration::from_nanos(now_ns.saturating_sub(last)))
    }

    /// Classify every rank as healthy / slow / dead. `slow_threshold` is
    /// the multiple of the median mean-beat-interval beyond which a living
    /// rank counts as slow (same convention as `StragglerReport::analyze`;
    /// must be ≥ 1).
    pub fn classify(&self, slow_threshold: f64) -> HealthReport {
        assert!(slow_threshold >= 1.0, "a straggler is ≥ 1× the median");
        let now_ns = self.started.elapsed().as_nanos() as u64;
        let snap: Vec<(u64, u64)> = self
            .beacons
            .iter()
            .map(|b| {
                (
                    b.last_ns.load(Ordering::Acquire),
                    b.beats.load(Ordering::Relaxed),
                )
            })
            .collect();
        // Mean interval per rank = last beat time / beats (beats start at
        // monitor start); only meaningful once a rank has beat twice.
        let mut intervals: Vec<f64> = snap
            .iter()
            .filter(|(last, beats)| *beats >= 2 && *last > 0)
            .map(|(last, beats)| *last as f64 / *beats as f64 * 1e-9)
            .collect();
        intervals.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = if intervals.is_empty() {
            0.0
        } else {
            intervals[intervals.len() / 2]
        };
        let dead_ns = self.dead_after.as_nanos() as u64;
        let ranks = self
            .keys
            .iter()
            .zip(&snap)
            .map(|(key, (last, beats))| {
                let silent_ns = now_ns.saturating_sub(*last);
                let cond = if silent_ns >= dead_ns {
                    RankCondition::Dead {
                        silent_for: Duration::from_nanos(silent_ns),
                    }
                } else if median > 0.0 && *beats >= 2 {
                    let mean = *last as f64 / *beats as f64 * 1e-9;
                    let factor = mean / median;
                    if factor > slow_threshold {
                        RankCondition::Slow { factor }
                    } else {
                        RankCondition::Healthy
                    }
                } else {
                    RankCondition::Healthy
                };
                (*key, cond)
            })
            .collect();
        HealthReport {
            ranks,
            median_interval_s: median,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec222() -> PtdpSpec {
        PtdpSpec::new(2, 2, 2)
    }

    #[test]
    fn silent_world_is_dead_after_window() {
        let spec = spec222();
        let mon = HealthMonitor::with_dead_after(
            &spec,
            Duration::from_millis(1),
            Duration::from_millis(5),
        );
        std::thread::sleep(Duration::from_millis(10));
        let report = mon.classify(1.5);
        assert_eq!(report.dead().len(), spec.world());
        assert!(report.slow().is_empty());
    }

    #[test]
    fn beating_ranks_are_healthy() {
        let spec = spec222();
        let mon = HealthMonitor::with_dead_after(
            &spec,
            Duration::from_millis(1),
            Duration::from_secs(60),
        );
        for _ in 0..3 {
            for r in 0..spec.world() {
                mon.beat(r);
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        let report = mon.classify(3.0);
        assert!(report.all_healthy(), "{report:?}");
        assert!(report.median_interval_s > 0.0);
        assert_eq!(mon.beats(0), 3);
    }

    #[test]
    fn one_silent_rank_is_dead_not_slow() {
        let spec = spec222();
        let mon = HealthMonitor::with_dead_after(
            &spec,
            Duration::from_millis(1),
            Duration::from_millis(20),
        );
        for _ in 0..4 {
            for r in 1..spec.world() {
                mon.beat(r);
            }
            std::thread::sleep(Duration::from_millis(8));
        }
        let report = mon.classify(2.0);
        assert_eq!(report.dead(), vec![spec.thread_key(0)]);
        // The beating ranks are alive (healthy or at worst slow).
        for (key, cond) in &report.ranks {
            if *key != spec.thread_key(0) {
                assert!(!cond.is_dead(), "{key:?} wrongly dead");
            }
        }
    }

    #[test]
    fn lagging_rank_classified_slow_via_median() {
        let spec = spec222();
        let mon = HealthMonitor::with_dead_after(
            &spec,
            Duration::from_millis(1),
            Duration::from_secs(60),
        );
        // Rank 0 beats once for every 4 beats of the others: its mean
        // interval is ~4× the median.
        for i in 0..8 {
            for r in 1..spec.world() {
                mon.beat(r);
            }
            if i % 4 == 0 {
                mon.beat(0);
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        let report = mon.classify(2.0);
        let slow = report.slow();
        assert!(slow.contains(&spec.thread_key(0)), "{report:?}");
        assert!(report.dead().is_empty());
    }
}
