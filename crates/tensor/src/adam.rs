//! Adam optimizer (the paper's models all train with mixed-precision Adam;
//! here everything is f32).

/// Adam with bias correction.
#[derive(Debug, Clone)]
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical-stability epsilon.
    pub eps: f32,
    t: u64,
    m: Vec<f32>,
    v: Vec<f32>,
}

impl Adam {
    /// Standard hyperparameters except the caller-chosen learning rate.
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Apply one Adam step over the concatenation of (param, grad) pairs.
    /// The total parameter count must be identical across calls (state is
    /// positional). Gradients are left untouched; zero them via
    /// [`Adam::zero_grads`] or the owner's visitor.
    pub fn step(&mut self, pairs: &mut [(&mut [f32], &mut [f32])]) {
        let total: usize = pairs.iter().map(|(p, _)| p.len()).sum();
        if self.m.is_empty() {
            self.m = vec![0.0; total];
            self.v = vec![0.0; total];
        }
        assert_eq!(self.m.len(), total, "parameter count changed mid-training");
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        let mut off = 0;
        for (params, grads) in pairs.iter_mut() {
            assert_eq!(params.len(), grads.len());
            for i in 0..params.len() {
                let g = grads[i];
                let m = &mut self.m[off + i];
                let v = &mut self.v[off + i];
                *m = self.beta1 * *m + (1.0 - self.beta1) * g;
                *v = self.beta2 * *v + (1.0 - self.beta2) * g * g;
                let mhat = *m / bc1;
                let vhat = *v / bc2;
                params[i] -= self.lr * mhat / (vhat.sqrt() + self.eps);
            }
            off += params.len();
        }
    }

    /// Zero every gradient buffer.
    pub fn zero_grads(pairs: &mut [(&mut [f32], &mut [f32])]) {
        for (_, grads) in pairs.iter_mut() {
            grads.fill(0.0);
        }
    }

    /// Steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Snapshot the optimizer state (step count and both moment vectors)
    /// for checkpointing. Together with the parameters this is everything
    /// needed to resume training bit-identically.
    pub fn export_state(&self) -> AdamState {
        AdamState {
            t: self.t,
            m: self.m.clone(),
            v: self.v.clone(),
        }
    }

    /// Restore state captured by [`Adam::export_state`]. Hyperparameters
    /// are kept; subsequent steps continue exactly where the snapshot
    /// left off.
    pub fn import_state(&mut self, state: AdamState) {
        assert_eq!(state.m.len(), state.v.len(), "moment length mismatch");
        self.t = state.t;
        self.m = state.m;
        self.v = state.v;
    }
}

/// Serializable Adam state: step count and first/second moment vectors.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AdamState {
    /// Steps taken.
    pub t: u64,
    /// First moments (positional, over the concatenated parameter slices).
    pub m: Vec<f32>,
    /// Second moments.
    pub v: Vec<f32>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimizes_quadratic() {
        // f(x) = Σ (x−3)²; Adam should walk x toward 3.
        let mut x = vec![0.0f32; 4];
        let mut adam = Adam::new(0.1);
        for _ in 0..500 {
            let mut g: Vec<f32> = x.iter().map(|&v| 2.0 * (v - 3.0)).collect();
            adam.step(&mut [(&mut x, &mut g)]);
        }
        for v in &x {
            assert!((v - 3.0).abs() < 0.05, "got {v}");
        }
        assert_eq!(adam.steps(), 500);
    }

    #[test]
    fn first_step_size_is_lr() {
        // With bias correction, the first update magnitude ≈ lr·sign(g).
        let mut x = vec![0.0f32];
        let mut g = vec![5.0f32];
        let mut adam = Adam::new(0.01);
        adam.step(&mut [(&mut x, &mut g)]);
        assert!((x[0] + 0.01).abs() < 1e-4, "got {}", x[0]);
    }

    #[test]
    #[should_panic(expected = "parameter count changed")]
    fn rejects_changing_shapes() {
        let mut adam = Adam::new(0.01);
        let mut a = vec![0.0f32; 2];
        let mut ga = vec![0.0f32; 2];
        adam.step(&mut [(&mut a, &mut ga)]);
        let mut b = vec![0.0f32; 3];
        let mut gb = vec![0.0f32; 3];
        adam.step(&mut [(&mut b, &mut gb)]);
    }

    #[test]
    fn zero_grads_clears() {
        let mut p = vec![1.0f32; 3];
        let mut g = vec![2.0f32; 3];
        Adam::zero_grads(&mut [(&mut p, &mut g)]);
        assert_eq!(g, vec![0.0; 3]);
        assert_eq!(p, vec![1.0; 3]);
    }
}
