//! Model checkpoint save/load (§5.10's practical concern, exercised for
//! real at tiny scale): a simple versioned binary format holding the
//! architecture and every parameter in canonical visit order.

use std::io::{self, Read, Write};
use std::path::Path;

use rand::SeedableRng;

use crate::gpt::{GptModel, TinyGptConfig};

const MAGIC: &[u8; 8] = b"MGTRNCK1";

/// Serialize the model (architecture + parameters) to a writer.
pub fn save(model: &mut GptModel, w: &mut impl Write) -> io::Result<()> {
    w.write_all(MAGIC)?;
    for v in [
        model.cfg.vocab,
        model.cfg.seq,
        model.cfg.hidden,
        model.cfg.heads,
        model.cfg.layers,
    ] {
        w.write_all(&(v as u64).to_le_bytes())?;
    }
    let mut params: Vec<f32> = Vec::new();
    model.visit(&mut |p, _| params.extend_from_slice(p));
    w.write_all(&(params.len() as u64).to_le_bytes())?;
    for p in params {
        w.write_all(&p.to_le_bytes())?;
    }
    Ok(())
}

/// Deserialize a model previously written by [`save`].
pub fn load(r: &mut impl Read) -> io::Result<GptModel> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "not a megatron-ptdp-rs checkpoint",
        ));
    }
    let mut u64buf = [0u8; 8];
    let mut next_u64 = |r: &mut dyn Read| -> io::Result<u64> {
        r.read_exact(&mut u64buf)?;
        Ok(u64::from_le_bytes(u64buf))
    };
    let cfg = TinyGptConfig {
        vocab: next_u64(r)? as usize,
        seq: next_u64(r)? as usize,
        hidden: next_u64(r)? as usize,
        heads: next_u64(r)? as usize,
        layers: next_u64(r)? as usize,
    };
    let count = next_u64(r)? as usize;
    let mut params = vec![0f32; count];
    let mut f32buf = [0u8; 4];
    for p in &mut params {
        r.read_exact(&mut f32buf)?;
        *p = f32::from_le_bytes(f32buf);
    }
    // Rebuild structure (weights are about to be overwritten).
    let mut rng = rand::rngs::StdRng::seed_from_u64(0);
    let mut model = GptModel::new(cfg, &mut rng);
    let mut off = 0usize;
    let mut short = false;
    model.visit(&mut |p, _| {
        if off + p.len() <= params.len() {
            p.copy_from_slice(&params[off..off + p.len()]);
        } else {
            short = true;
        }
        off += p.len();
    });
    if short || off != count {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("checkpoint has {count} params, model needs {off}"),
        ));
    }
    Ok(model)
}

/// Save to a file path.
pub fn save_file(model: &mut GptModel, path: impl AsRef<Path>) -> io::Result<()> {
    let mut f = io::BufWriter::new(std::fs::File::create(path)?);
    save(model, &mut f)
}

/// Load from a file path.
pub fn load_file(path: impl AsRef<Path>) -> io::Result<GptModel> {
    let mut f = io::BufReader::new(std::fs::File::open(path)?);
    load(&mut f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::cross_entropy;

    fn model() -> GptModel {
        let cfg = TinyGptConfig {
            vocab: 11,
            seq: 4,
            hidden: 8,
            heads: 2,
            layers: 2,
        };
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        GptModel::new(cfg, &mut rng)
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let mut m = model();
        let mut buf = Vec::new();
        save(&mut m, &mut buf).unwrap();
        let restored = load(&mut buf.as_slice()).unwrap();
        assert_eq!(restored.cfg, m.cfg);
        // Identical forward results.
        let tokens = [1usize, 2, 3, 4];
        let (a, _) = m.forward(&tokens, 1);
        let (b, _) = restored.forward(&tokens, 1);
        assert_eq!(a.max_abs_diff(&b), 0.0);
        let (la, _) = cross_entropy(&a, &[2, 3, 4, 5]);
        let (lb, _) = cross_entropy(&b, &[2, 3, 4, 5]);
        assert_eq!(la, lb);
    }

    #[test]
    fn rejects_garbage() {
        assert!(load(&mut &b"not a checkpoint"[..]).is_err());
    }

    #[test]
    fn rejects_truncated() {
        let mut m = model();
        let mut buf = Vec::new();
        save(&mut m, &mut buf).unwrap();
        buf.truncate(buf.len() - 13);
        assert!(load(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("megatron_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tiny.ckpt");
        let mut m = model();
        save_file(&mut m, &path).unwrap();
        let restored = load_file(&path).unwrap();
        assert_eq!(restored.cfg, m.cfg);
        std::fs::remove_file(&path).ok();
    }
}
