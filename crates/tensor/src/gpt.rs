//! A complete (small) GPT model with hand-written backprop — the serial
//! reference the distributed runtime is checked against.
//!
//! Differences from the paper's production models, chosen for testability:
//! untied LM head (tied embeddings complicate gradient plumbing without
//! affecting any claim under study) and no dropout (determinism; see the
//! crate docs).

use rand::Rng;

use crate::layers::{
    cross_entropy, gelu, gelu_backward, AttentionCache, AttentionCore, Embedding, LayerNorm,
    LayerNormCache, Linear,
};
use crate::Matrix;

/// Architecture of a test-scale GPT.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TinyGptConfig {
    /// Vocabulary size.
    pub vocab: usize,
    /// Sequence length.
    pub seq: usize,
    /// Hidden size.
    pub hidden: usize,
    /// Attention heads.
    pub heads: usize,
    /// Transformer layers.
    pub layers: usize,
}

impl TinyGptConfig {
    /// Validate divisibility constraints.
    pub fn validate(&self) {
        assert!(
            self.hidden.is_multiple_of(self.heads),
            "heads must divide hidden"
        );
        assert!(self.vocab > 0 && self.seq > 0 && self.layers > 0);
    }
}

/// One transformer block: LN → attention → residual, LN → MLP → residual.
#[derive(Debug, Clone)]
pub struct Block {
    /// Pre-attention LayerNorm.
    pub ln1: LayerNorm,
    /// Fused QKV projection (`h × 3h`).
    pub qkv: Linear,
    /// Attention output projection (`h × h`).
    pub proj: Linear,
    /// Pre-MLP LayerNorm.
    pub ln2: LayerNorm,
    /// MLP up-projection (`h × 4h`).
    pub fc1: Linear,
    /// MLP down-projection (`4h × h`).
    pub fc2: Linear,
    heads: usize,
}

/// Forward cache for one block.
pub struct BlockCache {
    x: Matrix,
    ln1: LayerNormCache,
    h1: Matrix,
    q: Matrix,
    k: Matrix,
    v: Matrix,
    attn: AttentionCache,
    attn_out: Matrix,
    ln2: LayerNormCache,
    h2: Matrix,
    f: Matrix,
    g: Matrix,
}

impl Block {
    /// Assemble a block from explicit parts (used when reconstructing a
    /// serial model from distributed shards).
    #[allow(clippy::too_many_arguments)]
    pub fn from_parts(
        ln1: LayerNorm,
        qkv: Linear,
        proj: Linear,
        ln2: LayerNorm,
        fc1: Linear,
        fc2: Linear,
        heads: usize,
    ) -> Self {
        Block {
            ln1,
            qkv,
            proj,
            ln2,
            fc1,
            fc2,
            heads,
        }
    }

    /// Attention heads in this block.
    pub fn heads(&self) -> usize {
        self.heads
    }

    /// Gaussian-initialized block of width `h` with `heads` heads.
    pub fn new(h: usize, heads: usize, rng: &mut impl Rng) -> Self {
        Block {
            ln1: LayerNorm::new(h),
            qkv: Linear::new(h, 3 * h, true, rng),
            proj: Linear::new(h, h, true, rng),
            ln2: LayerNorm::new(h),
            fc1: Linear::new(h, 4 * h, true, rng),
            fc2: Linear::new(4 * h, h, true, rng),
            heads,
        }
    }

    /// Forward for `batch` sequences of length `seq` (`x` is `[b·s, h]`).
    pub fn forward(&self, x: &Matrix, batch: usize, seq: usize) -> (Matrix, BlockCache) {
        let h = x.cols();
        let core = AttentionCore {
            batch,
            seq,
            heads: self.heads,
            head_dim: h / self.heads,
        };
        let (h1, ln1_cache) = self.ln1.forward(x);
        let qkv = self.qkv.forward(&h1);
        let q = qkv.columns(0, h);
        let k = qkv.columns(h, 2 * h);
        let v = qkv.columns(2 * h, 3 * h);
        let (attn_raw, attn_cache) = core.forward(&q, &k, &v);
        let proj = self.proj.forward(&attn_raw);
        let mut x2 = proj;
        x2.add_assign(x); // residual
        let (h2, ln2_cache) = self.ln2.forward(&x2);
        let f = self.fc1.forward(&h2);
        let g = gelu(&f);
        let o = self.fc2.forward(&g);
        let mut out = o;
        out.add_assign(&x2); // residual (x2 itself is not needed at backward
                             // time: the residual path re-injects `dout`)
        let cache = BlockCache {
            x: x.clone(),
            ln1: ln1_cache,
            h1,
            q,
            k,
            v,
            attn: attn_cache,
            attn_out: attn_raw,
            ln2: ln2_cache,
            h2,
            f,
            g,
        };
        (out, cache)
    }

    /// Backward; accumulates parameter gradients and returns `dx`.
    pub fn backward(
        &mut self,
        cache: &BlockCache,
        dout: &Matrix,
        batch: usize,
        seq: usize,
    ) -> Matrix {
        let h = cache.x.cols();
        let core = AttentionCore {
            batch,
            seq,
            heads: self.heads,
            head_dim: h / self.heads,
        };
        // MLP residual branch.
        let dg = self.fc2.backward(&cache.g, dout);
        let df = gelu_backward(&cache.f, &dg);
        let dh2 = self.fc1.backward(&cache.h2, &df);
        let mut dx2 = self.ln2.backward(&cache.ln2, &dh2);
        dx2.add_assign(dout); // residual passthrough

        // Attention residual branch.
        let dattn_raw = self.proj.backward(&cache.attn_out, &dx2);
        let (dq, dk, dv) = core.backward(&cache.q, &cache.k, &cache.v, &cache.attn, &dattn_raw);
        let dqkv = Matrix::concat_cols(&[dq, dk, dv]);
        let dh1 = self.qkv.backward(&cache.h1, &dqkv);
        let mut dx = self.ln1.backward(&cache.ln1, &dh1);
        dx.add_assign(&dx2); // residual passthrough
        dx
    }

    /// Visit (param, grad) pairs in a stable order.
    pub fn visit(&mut self, f: &mut impl FnMut(&mut [f32], &mut [f32])) {
        self.ln1.visit(f);
        self.qkv.visit(f);
        self.proj.visit(f);
        self.ln2.visit(f);
        self.fc1.visit(f);
        self.fc2.visit(f);
    }

    /// Parameter count.
    pub fn param_count(&self) -> usize {
        self.ln1.param_count()
            + self.qkv.param_count()
            + self.proj.param_count()
            + self.ln2.param_count()
            + self.fc1.param_count()
            + self.fc2.param_count()
    }
}

/// The full model.
#[derive(Debug, Clone)]
pub struct GptModel {
    /// Architecture.
    pub cfg: TinyGptConfig,
    /// Token + positional embedding.
    pub embed: Embedding,
    /// Transformer blocks.
    pub blocks: Vec<Block>,
    /// Final LayerNorm.
    pub final_ln: LayerNorm,
    /// LM head (`h × V`, untied, no bias).
    pub lm_head: Linear,
}

/// Full-model forward cache.
pub struct GptCache {
    tokens: Vec<usize>,
    blocks: Vec<BlockCache>,
    final_ln: LayerNormCache,
    hidden_final: Matrix,
    batch: usize,
}

impl GptModel {
    /// Gaussian-initialized model.
    pub fn new(cfg: TinyGptConfig, rng: &mut impl Rng) -> Self {
        cfg.validate();
        GptModel {
            cfg,
            embed: Embedding::new(cfg.vocab, cfg.seq, cfg.hidden, rng),
            blocks: (0..cfg.layers)
                .map(|_| Block::new(cfg.hidden, cfg.heads, rng))
                .collect(),
            final_ln: LayerNorm::new(cfg.hidden),
            lm_head: Linear::new(cfg.hidden, cfg.vocab, false, rng),
        }
    }

    /// Forward to logits (`[b·s, V]`).
    pub fn forward(&self, tokens: &[usize], batch: usize) -> (Matrix, GptCache) {
        assert_eq!(tokens.len(), batch * self.cfg.seq);
        let mut x = self.embed.forward(tokens, self.cfg.seq);
        let mut caches = Vec::with_capacity(self.blocks.len());
        for b in &self.blocks {
            let (nx, c) = b.forward(&x, batch, self.cfg.seq);
            x = nx;
            caches.push(c);
        }
        let (hf, ln_cache) = self.final_ln.forward(&x);
        let logits = self.lm_head.forward(&hf);
        (
            logits,
            GptCache {
                tokens: tokens.to_vec(),
                blocks: caches,
                final_ln: ln_cache,
                hidden_final: hf,
                batch,
            },
        )
    }

    /// Backward from `dlogits`, accumulating all parameter gradients.
    pub fn backward(&mut self, cache: &GptCache, dlogits: &Matrix) {
        let dhf = self.lm_head.backward(&cache.hidden_final, dlogits);
        let mut dx = self.final_ln.backward(&cache.final_ln, &dhf);
        for (b, c) in self.blocks.iter_mut().zip(&cache.blocks).rev() {
            dx = b.backward(c, &dx, cache.batch, self.cfg.seq);
        }
        self.embed.backward(&cache.tokens, self.cfg.seq, &dx);
    }

    /// One full training step: forward, loss, backward. Gradients are left
    /// accumulated for the caller's optimizer.
    pub fn loss_and_grad(&mut self, tokens: &[usize], targets: &[usize], batch: usize) -> f32 {
        let (logits, cache) = self.forward(tokens, batch);
        let (loss, dlogits) = cross_entropy(&logits, targets);
        self.backward(&cache, &dlogits);
        loss
    }

    /// Visit all (param, grad) pairs in a stable order.
    pub fn visit(&mut self, f: &mut impl FnMut(&mut [f32], &mut [f32])) {
        self.embed.visit(f);
        for b in &mut self.blocks {
            b.visit(f);
        }
        self.final_ln.visit(f);
        self.lm_head.visit(f);
    }

    /// Collect (param, grad) pairs for the optimizer.
    pub fn param_grad_pairs(&mut self) -> Vec<(&mut [f32], &mut [f32])> {
        let mut pairs: Vec<(*mut [f32], *mut [f32])> = Vec::new();
        self.visit(&mut |p, g| pairs.push((p as *mut [f32], g as *mut [f32])));
        // SAFETY: `visit` yields disjoint field borrows; the raw-pointer trip
        // only erases the borrow-checker's inability to see that a closure
        // collecting `&mut` slices keeps them disjoint.
        pairs
            .into_iter()
            .map(|(p, g)| unsafe { (&mut *p, &mut *g) })
            .collect()
    }

    /// Zero all gradient accumulators.
    pub fn zero_grads(&mut self) {
        self.visit(&mut |_, g| g.fill(0.0));
    }

    /// Total parameter count.
    pub fn param_count(&mut self) -> usize {
        let mut n = 0;
        self.visit(&mut |p, _| n += p.len());
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::numeric_grad;
    use crate::Adam;
    use rand::Rng;
    use rand::SeedableRng;

    fn tiny() -> TinyGptConfig {
        TinyGptConfig {
            vocab: 17,
            seq: 6,
            hidden: 8,
            heads: 2,
            layers: 2,
        }
    }

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(1234)
    }

    #[test]
    fn forward_shapes() {
        let mut r = rng();
        let model = GptModel::new(tiny(), &mut r);
        let tokens: Vec<usize> = (0..12).map(|i| i % 17).collect(); // batch 2
        let (logits, _) = model.forward(&tokens, 2);
        assert_eq!((logits.rows(), logits.cols()), (12, 17));
    }

    #[test]
    fn deterministic_forward() {
        let mut r1 = rng();
        let mut r2 = rng();
        let m1 = GptModel::new(tiny(), &mut r1);
        let m2 = GptModel::new(tiny(), &mut r2);
        let tokens: Vec<usize> = (0..6).collect();
        let (l1, _) = m1.forward(&tokens, 1);
        let (l2, _) = m2.forward(&tokens, 1);
        assert_eq!(l1.max_abs_diff(&l2), 0.0);
    }

    #[test]
    fn whole_model_gradcheck_on_a_few_params() {
        // Spot-check the end-to-end gradient on a handful of parameters from
        // different layers (full numeric check would be slow).
        let mut r = rng();
        let mut model = GptModel::new(tiny(), &mut r);
        let tokens: Vec<usize> = vec![3, 1, 4, 1, 5, 9];
        let targets: Vec<usize> = vec![1, 4, 1, 5, 9, 2];

        model.zero_grads();
        let _ = model.loss_and_grad(&tokens, &targets, 1);

        // Gather flattened parameter and gradient snapshots.
        let mut params: Vec<f32> = Vec::new();
        let mut grads: Vec<f32> = Vec::new();
        model.visit(&mut |p, g| {
            params.extend_from_slice(p);
            grads.extend_from_slice(g);
        });

        let mut probe_rng = rand::rngs::StdRng::seed_from_u64(9);
        let indices: Vec<usize> = (0..12)
            .map(|_| probe_rng.gen_range(0..params.len()))
            .collect();

        for &idx in &indices {
            let loss_at = |delta: f32| {
                let mut m = GptModel::new(tiny(), &mut rng());
                // Overwrite with the snapshot + perturbation.
                let mut off = 0;
                m.visit(&mut |p, _| {
                    p.copy_from_slice(&params[off..off + p.len()]);
                    off += p.len();
                });
                let mut off = 0;
                m.visit(&mut |p, _| {
                    if idx >= off && idx < off + p.len() {
                        p[idx - off] += delta;
                    }
                    off += p.len();
                });
                m.loss_and_grad(&tokens, &targets, 1)
            };
            let eps = 1e-2;
            let numeric = (loss_at(eps) - loss_at(-eps)) / (2.0 * eps);
            let analytic = grads[idx];
            let scale = numeric.abs().max(analytic.abs()).max(0.05);
            assert!(
                (numeric - analytic).abs() / scale < 0.15,
                "param {idx}: numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn training_reduces_loss() {
        // Learn a fixed random sequence (memorization): loss must fall
        // substantially from ln(V).
        let mut r = rng();
        let mut model = GptModel::new(tiny(), &mut r);
        let tokens: Vec<usize> = vec![3, 1, 4, 1, 5, 9];
        let targets: Vec<usize> = vec![1, 4, 1, 5, 9, 2];
        let mut adam = Adam::new(0.01);
        let mut first = 0.0;
        let mut last = 0.0;
        for step in 0..60 {
            model.zero_grads();
            let loss = model.loss_and_grad(&tokens, &targets, 1);
            if step == 0 {
                first = loss;
            }
            last = loss;
            let mut pairs = model.param_grad_pairs();
            adam.step(&mut pairs);
        }
        assert!(
            last < first * 0.3,
            "loss should collapse on memorization: {first} -> {last}"
        );
    }

    #[test]
    fn grad_accumulation_is_additive() {
        let mut r = rng();
        let mut model = GptModel::new(tiny(), &mut r);
        let tokens: Vec<usize> = vec![1, 2, 3, 4, 5, 6];
        let targets: Vec<usize> = vec![2, 3, 4, 5, 6, 7];
        model.zero_grads();
        model.loss_and_grad(&tokens, &targets, 1);
        let mut g1: Vec<f32> = Vec::new();
        model.visit(&mut |_, g| g1.extend_from_slice(g));
        model.loss_and_grad(&tokens, &targets, 1);
        let mut g2: Vec<f32> = Vec::new();
        model.visit(&mut |_, g| g2.extend_from_slice(g));
        for (a, b) in g1.iter().zip(&g2) {
            assert!((b - 2.0 * a).abs() < 1e-4 + a.abs() * 1e-3);
        }
    }

    #[test]
    fn numeric_grad_helper_sane() {
        let f = |x: &[f32]| x[0].powi(3);
        let g = numeric_grad(&f, &[2.0], 1e-3);
        assert!((g[0] - 12.0).abs() < 0.05);
    }

    #[test]
    fn param_count_matches_formula() {
        let mut r = rng();
        let cfg = tiny();
        let mut model = GptModel::new(cfg, &mut r);
        let h = cfg.hidden;
        let per_block = 2 * 2 * h              // two LayerNorms
            + h * 3 * h + 3 * h                 // qkv
            + h * h + h                         // proj
            + h * 4 * h + 4 * h                 // fc1
            + 4 * h * h + h; // fc2
        let expect = cfg.vocab * h + cfg.seq * h      // embeddings
            + cfg.layers * per_block
            + 2 * h                                    // final LN
            + h * cfg.vocab; // untied head
        assert_eq!(model.param_count(), expect);
    }
}
