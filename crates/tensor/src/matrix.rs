//! Row-major 2-D `f32` matrix.

use rand::distributions::Distribution;
use rand::Rng;

/// A dense row-major matrix of `f32`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Zero-filled `rows × cols` matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Build from a function of (row, col).
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Wrap an existing buffer (must have `rows · cols` elements).
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer size mismatch");
        Matrix { rows, cols, data }
    }

    /// Gaussian initialization with standard deviation `std`.
    pub fn randn(rows: usize, cols: usize, std: f32, rng: &mut impl Rng) -> Self {
        let normal = rand::distributions::Uniform::new(-1.0f32, 1.0);
        // Sum of three uniforms ≈ bell-shaped; adequate for init and cheap.
        Matrix::from_fn(rows, cols, |_, _| {
            (normal.sample(rng) + normal.sample(rng) + normal.sample(rng)) * std * 0.577
        })
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Flat element count.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the matrix has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Mutable element accessor.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Borrow one row as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Borrow one row mutably.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Raw data slice.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Raw mutable data slice.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |r, c| self.get(c, r))
    }

    /// Element-wise in-place addition.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Scale all elements in place.
    pub fn scale(&mut self, k: f32) {
        for a in &mut self.data {
            *a *= k;
        }
    }

    /// Horizontal slice of columns `[c0, c1)` as a new matrix.
    pub fn columns(&self, c0: usize, c1: usize) -> Matrix {
        assert!(c0 <= c1 && c1 <= self.cols);
        Matrix::from_fn(self.rows, c1 - c0, |r, c| self.get(r, c0 + c))
    }

    /// Vertical slice of rows `[r0, r1)` as a new matrix.
    pub fn rows_slice(&self, r0: usize, r1: usize) -> Matrix {
        assert!(r0 <= r1 && r1 <= self.rows);
        Matrix::from_vec(
            r1 - r0,
            self.cols,
            self.data[r0 * self.cols..r1 * self.cols].to_vec(),
        )
    }

    /// Concatenate matrices left-to-right (equal row counts).
    pub fn concat_cols(parts: &[Matrix]) -> Matrix {
        assert!(!parts.is_empty());
        let rows = parts[0].rows;
        assert!(parts.iter().all(|p| p.rows == rows));
        let cols: usize = parts.iter().map(|p| p.cols).sum();
        let mut out = Matrix::zeros(rows, cols);
        for r in 0..rows {
            let mut off = 0;
            for p in parts {
                out.row_mut(r)[off..off + p.cols].copy_from_slice(p.row(r));
                off += p.cols;
            }
        }
        out
    }

    /// Concatenate matrices top-to-bottom (equal column counts).
    pub fn concat_rows(parts: &[Matrix]) -> Matrix {
        assert!(!parts.is_empty());
        let cols = parts[0].cols;
        assert!(parts.iter().all(|p| p.cols == cols));
        let rows: usize = parts.iter().map(|p| p.rows).sum();
        let mut data = Vec::with_capacity(rows * cols);
        for p in parts {
            data.extend_from_slice(&p.data);
        }
        Matrix { rows, cols, data }
    }

    /// Largest absolute element-wise difference to another matrix.
    pub fn max_abs_diff(&self, other: &Matrix) -> f32 {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn basic_accessors() {
        let mut m = Matrix::zeros(2, 3);
        m.set(1, 2, 5.0);
        assert_eq!(m.get(1, 2), 5.0);
        assert_eq!(m.row(1), &[0.0, 0.0, 5.0]);
        assert_eq!(m.len(), 6);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = Matrix::from_fn(3, 4, |r, c| (r * 10 + c) as f32);
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose().get(2, 1), m.get(1, 2));
    }

    #[test]
    fn concat_and_slice_cols_inverse() {
        let m = Matrix::from_fn(2, 6, |r, c| (r * 6 + c) as f32);
        let a = m.columns(0, 3);
        let b = m.columns(3, 6);
        assert_eq!(Matrix::concat_cols(&[a, b]), m);
    }

    #[test]
    fn concat_and_slice_rows_inverse() {
        let m = Matrix::from_fn(4, 3, |r, c| (r * 3 + c) as f32);
        let a = m.rows_slice(0, 2);
        let b = m.rows_slice(2, 4);
        assert_eq!(Matrix::concat_rows(&[a, b]), m);
    }

    #[test]
    fn randn_is_deterministic_per_seed() {
        let mut r1 = rand::rngs::StdRng::seed_from_u64(7);
        let mut r2 = rand::rngs::StdRng::seed_from_u64(7);
        let a = Matrix::randn(4, 4, 0.02, &mut r1);
        let b = Matrix::randn(4, 4, 0.02, &mut r2);
        assert_eq!(a, b);
        assert!(a.as_slice().iter().any(|&x| x != 0.0));
    }

    #[test]
    fn add_and_scale() {
        let mut a = Matrix::from_fn(2, 2, |r, c| (r + c) as f32);
        let b = a.clone();
        a.add_assign(&b);
        a.scale(0.5);
        assert_eq!(a, b);
    }
}
