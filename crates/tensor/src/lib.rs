//! A real (if small) CPU tensor engine with hand-written backward passes.
//!
//! This crate is the numerical substrate for the thread-per-GPU distributed
//! runtime (`megatron-dist`): it provides everything a GPT forward/backward
//! pass needs — GEMM (thread-parallel, with a naive reference used in
//! tests), GeLU, LayerNorm, causal multi-head attention, embeddings,
//! cross-entropy — plus the Adam optimizer and a finite-difference gradient
//! checker. Dropout is intentionally omitted: the reproduction's
//! correctness claims (tensor/pipeline/data-parallel execution computes the
//! same gradients as serial execution) require deterministic math, and
//! dropout contributes nothing to the performance phenomena under study.
//!
//! Everything is `f32`, row-major, and deliberately simple: shapes are
//! explicit `(rows, cols)` pairs, layers own their parameters and gradient
//! buffers, and every `forward` returns the cache its `backward` needs.

pub mod adam;
pub mod checkpoint;
pub mod gemm;
pub mod gpt;
pub mod gradcheck;
pub mod layers;
mod matrix;

pub use adam::{Adam, AdamState};
pub use matrix::Matrix;
