//! Neural-network layers with explicit forward caches and hand-written
//! backward passes.

use rand::Rng;

use crate::gemm;
use crate::Matrix;

/// Fully-connected layer `y = x·W (+ b)`; `W` is `in × out`.
#[derive(Debug, Clone)]
pub struct Linear {
    /// Weight matrix, `in × out`.
    pub w: Matrix,
    /// Optional bias, length `out`.
    pub b: Option<Vec<f32>>,
    /// Weight gradient accumulator.
    pub gw: Matrix,
    /// Bias gradient accumulator.
    pub gb: Vec<f32>,
}

impl Linear {
    /// Gaussian-initialized layer.
    pub fn new(inputs: usize, outputs: usize, bias: bool, rng: &mut impl Rng) -> Self {
        let std = 0.02f32;
        Linear {
            w: Matrix::randn(inputs, outputs, std, rng),
            b: bias.then(|| vec![0.0; outputs]),
            gw: Matrix::zeros(inputs, outputs),
            gb: vec![0.0; outputs],
        }
    }

    /// Forward: returns the output; the caller keeps `x` as the cache.
    pub fn forward(&self, x: &Matrix) -> Matrix {
        let mut y = gemm::matmul(x, &self.w);
        if let Some(b) = &self.b {
            for r in 0..y.rows() {
                for (o, bv) in y.row_mut(r).iter_mut().zip(b) {
                    *o += bv;
                }
            }
        }
        y
    }

    /// Backward: accumulates `gw`/`gb`, returns `dx`.
    pub fn backward(&mut self, x: &Matrix, dy: &Matrix) -> Matrix {
        self.gw.add_assign(&gemm::matmul_tn(x, dy));
        if self.b.is_some() {
            for r in 0..dy.rows() {
                for (g, d) in self.gb.iter_mut().zip(dy.row(r)) {
                    *g += d;
                }
            }
        }
        gemm::matmul_nt(dy, &self.w)
    }

    /// Visit (param, grad) slice pairs.
    pub fn visit(&mut self, f: &mut impl FnMut(&mut [f32], &mut [f32])) {
        f(self.w.as_mut_slice(), self.gw.as_mut_slice());
        if let Some(b) = &mut self.b {
            f(b, &mut self.gb);
        }
    }

    /// Parameter count.
    pub fn param_count(&self) -> usize {
        self.w.len() + self.b.as_ref().map_or(0, Vec::len)
    }
}

/// GeLU non-linearity (tanh approximation, as in GPT).
pub fn gelu(x: &Matrix) -> Matrix {
    let mut y = x.clone();
    for v in y.as_mut_slice() {
        *v = gelu_scalar(*v);
    }
    y
}

#[inline]
fn gelu_scalar(x: f32) -> f32 {
    const C: f32 = 0.797_884_6; // sqrt(2/π)
    0.5 * x * (1.0 + (C * (x + 0.044715 * x * x * x)).tanh())
}

#[inline]
fn gelu_grad_scalar(x: f32) -> f32 {
    const C: f32 = 0.797_884_6;
    let u = C * (x + 0.044715 * x * x * x);
    let t = u.tanh();
    let du = C * (1.0 + 3.0 * 0.044715 * x * x);
    0.5 * (1.0 + t) + 0.5 * x * (1.0 - t * t) * du
}

/// GeLU backward: `dx = dy ⊙ gelu'(x)`.
pub fn gelu_backward(x: &Matrix, dy: &Matrix) -> Matrix {
    let mut dx = dy.clone();
    for (d, &xv) in dx.as_mut_slice().iter_mut().zip(x.as_slice()) {
        *d *= gelu_grad_scalar(xv);
    }
    dx
}

/// LayerNorm over the last dimension with learned scale and shift.
#[derive(Debug, Clone)]
pub struct LayerNorm {
    /// Scale, length `h`.
    pub gamma: Vec<f32>,
    /// Shift, length `h`.
    pub beta: Vec<f32>,
    /// Scale gradient.
    pub ggamma: Vec<f32>,
    /// Shift gradient.
    pub gbeta: Vec<f32>,
    eps: f32,
}

/// Cache for [`LayerNorm::backward`]: normalized input plus per-row inverse
/// standard deviation.
pub struct LayerNormCache {
    xhat: Matrix,
    inv_std: Vec<f32>,
}

impl LayerNorm {
    /// Identity-initialized LayerNorm of width `h`.
    pub fn new(h: usize) -> Self {
        LayerNorm {
            gamma: vec![1.0; h],
            beta: vec![0.0; h],
            ggamma: vec![0.0; h],
            gbeta: vec![0.0; h],
            eps: 1e-5,
        }
    }

    /// Forward over each row of `x`.
    pub fn forward(&self, x: &Matrix) -> (Matrix, LayerNormCache) {
        let h = x.cols();
        assert_eq!(h, self.gamma.len());
        let mut y = Matrix::zeros(x.rows(), h);
        let mut xhat = Matrix::zeros(x.rows(), h);
        let mut inv_std = Vec::with_capacity(x.rows());
        for r in 0..x.rows() {
            let row = x.row(r);
            let mean = row.iter().sum::<f32>() / h as f32;
            let var = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / h as f32;
            let istd = 1.0 / (var + self.eps).sqrt();
            inv_std.push(istd);
            for (c, &rv) in row.iter().enumerate() {
                let xh = (rv - mean) * istd;
                xhat.set(r, c, xh);
                y.set(r, c, xh * self.gamma[c] + self.beta[c]);
            }
        }
        (y, LayerNormCache { xhat, inv_std })
    }

    /// Backward; accumulates `ggamma`/`gbeta` and returns `dx`.
    pub fn backward(&mut self, cache: &LayerNormCache, dy: &Matrix) -> Matrix {
        let h = dy.cols() as f32;
        let mut dx = Matrix::zeros(dy.rows(), dy.cols());
        for r in 0..dy.rows() {
            let istd = cache.inv_std[r];
            let xhat = cache.xhat.row(r);
            let dyr = dy.row(r);
            let mut sum_dyg = 0.0f32;
            let mut sum_dyg_xhat = 0.0f32;
            for c in 0..dy.cols() {
                let dyg = dyr[c] * self.gamma[c];
                sum_dyg += dyg;
                sum_dyg_xhat += dyg * xhat[c];
                self.ggamma[c] += dyr[c] * xhat[c];
                self.gbeta[c] += dyr[c];
            }
            for c in 0..dy.cols() {
                let dyg = dyr[c] * self.gamma[c];
                dx.set(
                    r,
                    c,
                    istd * (dyg - sum_dyg / h - xhat[c] * sum_dyg_xhat / h),
                );
            }
        }
        dx
    }

    /// Visit (param, grad) slice pairs.
    pub fn visit(&mut self, f: &mut impl FnMut(&mut [f32], &mut [f32])) {
        f(&mut self.gamma, &mut self.ggamma);
        f(&mut self.beta, &mut self.gbeta);
    }

    /// Parameter count.
    pub fn param_count(&self) -> usize {
        self.gamma.len() + self.beta.len()
    }
}

/// Causal scaled-dot-product attention over locally-held heads.
///
/// Inputs `q`, `k`, `v` have shape `[batch·seq, heads_local·head_dim]`
/// (rows grouped by batch, then sequence position) — exactly the output
/// layout of a column-parallel QKV projection, so tensor-parallel ranks can
/// run this on their head shard without any communication (§2.3).
#[derive(Debug, Clone, Copy)]
pub struct AttentionCore {
    /// Samples in the batch.
    pub batch: usize,
    /// Sequence length.
    pub seq: usize,
    /// Heads held locally.
    pub heads: usize,
    /// Dimension per head.
    pub head_dim: usize,
}

/// Cache of per-(batch, head) attention probabilities.
pub struct AttentionCache {
    probs: Vec<Matrix>, // batch·heads entries of s×s
}

impl AttentionCache {
    /// Total `f32` values held (activation-memory instrumentation).
    pub fn float_count(&self) -> usize {
        self.probs.iter().map(Matrix::len).sum()
    }
}

impl AttentionCore {
    fn check(&self, m: &Matrix) {
        assert_eq!(m.rows(), self.batch * self.seq);
        assert_eq!(m.cols(), self.heads * self.head_dim);
    }

    /// Extract the `s × head_dim` block for (batch `bi`, head `hi`).
    fn head_block(&self, m: &Matrix, bi: usize, hi: usize) -> Matrix {
        let mut out = Matrix::zeros(self.seq, self.head_dim);
        for srow in 0..self.seq {
            let row = m.row(bi * self.seq + srow);
            out.row_mut(srow)
                .copy_from_slice(&row[hi * self.head_dim..(hi + 1) * self.head_dim]);
        }
        out
    }

    fn scatter_head_block(&self, target: &mut Matrix, block: &Matrix, bi: usize, hi: usize) {
        for srow in 0..self.seq {
            let dst = target.row_mut(bi * self.seq + srow);
            dst[hi * self.head_dim..(hi + 1) * self.head_dim].copy_from_slice(block.row(srow));
        }
    }

    /// Forward pass: causal softmax(QKᵀ/√d)·V.
    pub fn forward(&self, q: &Matrix, k: &Matrix, v: &Matrix) -> (Matrix, AttentionCache) {
        self.check(q);
        self.check(k);
        self.check(v);
        let scale = 1.0 / (self.head_dim as f32).sqrt();
        let mut out = Matrix::zeros(q.rows(), q.cols());
        let mut probs = Vec::with_capacity(self.batch * self.heads);
        for bi in 0..self.batch {
            for hi in 0..self.heads {
                let qh = self.head_block(q, bi, hi);
                let kh = self.head_block(k, bi, hi);
                let vh = self.head_block(v, bi, hi);
                let mut scores = gemm::matmul_nt(&qh, &kh);
                scores.scale(scale);
                // Causal mask + row-wise softmax.
                for r in 0..self.seq {
                    let row = scores.row_mut(r);
                    for cell in row.iter_mut().take(self.seq).skip(r + 1) {
                        *cell = f32::NEG_INFINITY;
                    }
                    let max = row[..=r].iter().fold(f32::NEG_INFINITY, |a, &b| a.max(b));
                    let mut sum = 0.0;
                    for item in row.iter_mut().take(r + 1) {
                        *item = (*item - max).exp();
                        sum += *item;
                    }
                    for item in row.iter_mut() {
                        if item.is_finite() {
                            *item /= sum;
                        } else {
                            *item = 0.0;
                        }
                    }
                }
                let oh = gemm::matmul(&scores, &vh);
                self.scatter_head_block(&mut out, &oh, bi, hi);
                probs.push(scores);
            }
        }
        (out, AttentionCache { probs })
    }

    /// Backward pass: returns `(dq, dk, dv)`.
    pub fn backward(
        &self,
        q: &Matrix,
        k: &Matrix,
        v: &Matrix,
        cache: &AttentionCache,
        dout: &Matrix,
    ) -> (Matrix, Matrix, Matrix) {
        let scale = 1.0 / (self.head_dim as f32).sqrt();
        let mut dq = Matrix::zeros(q.rows(), q.cols());
        let mut dk = dq.clone();
        let mut dv = dq.clone();
        for bi in 0..self.batch {
            for hi in 0..self.heads {
                let probs = &cache.probs[bi * self.heads + hi];
                let kh = self.head_block(k, bi, hi);
                let vh = self.head_block(v, bi, hi);
                let doh = self.head_block(dout, bi, hi);
                // dV = Pᵀ · dO ; dP = dO · Vᵀ.
                let dvh = gemm::matmul_tn(probs, &doh);
                let mut dscores = gemm::matmul_nt(&doh, &vh);
                // Softmax backward row-wise: dS = P ⊙ (dP − Σ dP⊙P).
                for r in 0..self.seq {
                    let prow = probs.row(r);
                    let drow = dscores.row_mut(r);
                    let dot: f32 = prow.iter().zip(drow.iter()).map(|(p, d)| p * d).sum();
                    for c in 0..self.seq {
                        drow[c] = prow[c] * (drow[c] - dot) * scale;
                    }
                }
                // dQ = dS · K ; dK = dSᵀ · Q.
                let qh = self.head_block(q, bi, hi);
                let dqh = gemm::matmul(&dscores, &kh);
                let dkh = gemm::matmul_tn(&dscores, &qh);
                self.scatter_head_block(&mut dq, &dqh, bi, hi);
                self.scatter_head_block(&mut dk, &dkh, bi, hi);
                self.scatter_head_block(&mut dv, &dvh, bi, hi);
            }
        }
        (dq, dk, dv)
    }
}

/// Token + learned positional embedding.
#[derive(Debug, Clone)]
pub struct Embedding {
    /// Token table, `V × h`.
    pub tokens: Matrix,
    /// Position table, `s_max × h`.
    pub positions: Matrix,
    /// Token-table gradient.
    pub gtokens: Matrix,
    /// Position-table gradient.
    pub gpositions: Matrix,
}

impl Embedding {
    /// Gaussian-initialized tables.
    pub fn new(vocab: usize, max_seq: usize, h: usize, rng: &mut impl Rng) -> Self {
        Embedding {
            tokens: Matrix::randn(vocab, h, 0.02, rng),
            positions: Matrix::randn(max_seq, h, 0.02, rng),
            gtokens: Matrix::zeros(vocab, h),
            gpositions: Matrix::zeros(max_seq, h),
        }
    }

    /// Look up `tokens` (length `batch·seq`, grouped by batch) into
    /// embeddings of shape `[batch·seq, h]`.
    pub fn forward(&self, token_ids: &[usize], seq: usize) -> Matrix {
        let h = self.tokens.cols();
        let mut out = Matrix::zeros(token_ids.len(), h);
        for (r, &tok) in token_ids.iter().enumerate() {
            let pos = r % seq;
            let dst = out.row_mut(r);
            for (c, d) in dst.iter_mut().enumerate() {
                *d = self.tokens.get(tok, c) + self.positions.get(pos, c);
            }
        }
        out
    }

    /// Scatter-add gradients back into the tables.
    pub fn backward(&mut self, token_ids: &[usize], seq: usize, dy: &Matrix) {
        for (r, &tok) in token_ids.iter().enumerate() {
            let pos = r % seq;
            let src = dy.row(r);
            for (c, &g) in src.iter().enumerate() {
                self.gtokens.set(tok, c, self.gtokens.get(tok, c) + g);
                self.gpositions.set(pos, c, self.gpositions.get(pos, c) + g);
            }
        }
    }

    /// Visit (param, grad) slice pairs.
    pub fn visit(&mut self, f: &mut impl FnMut(&mut [f32], &mut [f32])) {
        f(self.tokens.as_mut_slice(), self.gtokens.as_mut_slice());
        f(
            self.positions.as_mut_slice(),
            self.gpositions.as_mut_slice(),
        );
    }

    /// Parameter count.
    pub fn param_count(&self) -> usize {
        self.tokens.len() + self.positions.len()
    }
}

/// Mean cross-entropy of `logits` against `targets`; returns the loss and
/// `dlogits`.
pub fn cross_entropy(logits: &Matrix, targets: &[usize]) -> (f32, Matrix) {
    assert_eq!(logits.rows(), targets.len());
    let n = targets.len() as f32;
    let mut dlogits = Matrix::zeros(logits.rows(), logits.cols());
    let mut loss = 0.0f32;
    for (r, &t) in targets.iter().enumerate() {
        let row = logits.row(r);
        let max = row.iter().fold(f32::NEG_INFINITY, |a, &b| a.max(b));
        let sum: f32 = row.iter().map(|&v| (v - max).exp()).sum();
        let log_z = max + sum.ln();
        loss += log_z - row[t];
        let drow = dlogits.row_mut(r);
        for (c, d) in drow.iter_mut().enumerate() {
            let p = (row[c] - log_z).exp();
            *d = (p - if c == t { 1.0 } else { 0.0 }) / n;
        }
    }
    (loss / n, dlogits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::numeric_vs_analytic;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(42)
    }

    #[test]
    fn linear_forward_shape_and_bias() {
        let mut r = rng();
        let lin = Linear::new(4, 3, true, &mut r);
        let x = Matrix::randn(5, 4, 1.0, &mut r);
        let y = lin.forward(&x);
        assert_eq!((y.rows(), y.cols()), (5, 3));
        // Bias is initialized to zero; perturb and verify it shows up.
        let mut lin2 = lin.clone();
        lin2.b.as_mut().unwrap()[1] = 1.0;
        let y2 = lin2.forward(&x);
        assert!((y2.get(0, 1) - y.get(0, 1) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn linear_gradcheck() {
        let mut r = rng();
        let x = Matrix::randn(3, 4, 1.0, &mut r);
        let dy = Matrix::randn(3, 2, 1.0, &mut r);
        let build = |params: &[f32]| {
            let mut lin = Linear::new(4, 2, true, &mut rng());
            lin.w = Matrix::from_vec(4, 2, params[..8].to_vec());
            lin.b = Some(params[8..10].to_vec());
            lin
        };
        let loss = |params: &[f32]| {
            let lin = build(params);
            let y = lin.forward(&x);
            y.as_slice()
                .iter()
                .zip(dy.as_slice())
                .map(|(a, b)| a * b)
                .sum::<f32>()
        };
        let mut p0 = vec![0.0f32; 10];
        let mut r2 = rng();
        let init = Linear::new(4, 2, true, &mut r2);
        p0[..8].copy_from_slice(init.w.as_slice());
        let mut lin = build(&p0);
        lin.forward(&x);
        let _ = lin.backward(&x, &dy);
        let mut analytic = lin.gw.as_slice().to_vec();
        analytic.extend_from_slice(&lin.gb);
        numeric_vs_analytic(&loss, &p0, &analytic, 2e-2);
    }

    #[test]
    fn linear_input_grad_matches_numeric() {
        let mut r = rng();
        let lin = Linear::new(4, 2, false, &mut r);
        let x0 = Matrix::randn(2, 4, 1.0, &mut r);
        let dy = Matrix::randn(2, 2, 1.0, &mut r);
        let loss = |xs: &[f32]| {
            let x = Matrix::from_vec(2, 4, xs.to_vec());
            let y = lin.forward(&x);
            y.as_slice()
                .iter()
                .zip(dy.as_slice())
                .map(|(a, b)| a * b)
                .sum::<f32>()
        };
        let mut lin2 = lin.clone();
        let dx = lin2.backward(&x0, &dy);
        numeric_vs_analytic(&loss, x0.as_slice(), dx.as_slice(), 2e-2);
    }

    #[test]
    fn gelu_matches_reference_points() {
        // gelu(0) = 0; gelu(large) ≈ x; gelu(-large) ≈ 0.
        assert_eq!(gelu_scalar(0.0), 0.0);
        assert!((gelu_scalar(10.0) - 10.0).abs() < 1e-3);
        assert!(gelu_scalar(-10.0).abs() < 1e-3);
        // Known value: gelu(1) ≈ 0.8412.
        assert!((gelu_scalar(1.0) - 0.8412).abs() < 1e-3);
    }

    #[test]
    fn gelu_gradcheck() {
        let xs: Vec<f32> = vec![-2.0, -0.5, 0.0, 0.3, 1.7];
        let x = Matrix::from_vec(1, 5, xs.clone());
        let dy = Matrix::from_vec(1, 5, vec![1.0; 5]);
        let dx = gelu_backward(&x, &dy);
        let loss = |p: &[f32]| {
            let m = Matrix::from_vec(1, 5, p.to_vec());
            gelu(&m).as_slice().iter().sum::<f32>()
        };
        numeric_vs_analytic(&loss, &xs, dx.as_slice(), 2e-2);
    }

    #[test]
    fn layernorm_normalizes() {
        let mut r = rng();
        let ln = LayerNorm::new(8);
        let x = Matrix::randn(4, 8, 3.0, &mut r);
        let (y, _) = ln.forward(&x);
        for row in 0..4 {
            let mean: f32 = y.row(row).iter().sum::<f32>() / 8.0;
            let var: f32 = y
                .row(row)
                .iter()
                .map(|v| (v - mean) * (v - mean))
                .sum::<f32>()
                / 8.0;
            assert!(mean.abs() < 1e-5, "row {row} mean {mean}");
            assert!((var - 1.0).abs() < 1e-3, "row {row} var {var}");
        }
    }

    #[test]
    fn layernorm_gradcheck_input() {
        let mut r = rng();
        let x0 = Matrix::randn(2, 6, 1.0, &mut r);
        let dy = Matrix::randn(2, 6, 1.0, &mut r);
        let ln = LayerNorm::new(6);
        let loss = |xs: &[f32]| {
            let x = Matrix::from_vec(2, 6, xs.to_vec());
            let (y, _) = ln.forward(&x);
            y.as_slice()
                .iter()
                .zip(dy.as_slice())
                .map(|(a, b)| a * b)
                .sum::<f32>()
        };
        let mut ln2 = ln.clone();
        let (_, cache) = ln2.forward(&x0);
        let dx = ln2.backward(&cache, &dy);
        numeric_vs_analytic(&loss, x0.as_slice(), dx.as_slice(), 3e-2);
    }

    #[test]
    fn attention_is_causal() {
        let mut r = rng();
        let core = AttentionCore {
            batch: 1,
            seq: 6,
            heads: 2,
            head_dim: 4,
        };
        let q = Matrix::randn(6, 8, 1.0, &mut r);
        let k = Matrix::randn(6, 8, 1.0, &mut r);
        let v = Matrix::randn(6, 8, 1.0, &mut r);
        let (y1, _) = core.forward(&q, &k, &v);
        // Perturb the LAST position of k/v: earlier outputs must not change.
        let mut k2 = k.clone();
        let mut v2 = v.clone();
        for c in 0..8 {
            k2.set(5, c, 9.0);
            v2.set(5, c, -9.0);
        }
        let (y2, _) = core.forward(&q, &k2, &v2);
        for rrow in 0..5 {
            for c in 0..8 {
                assert!(
                    (y1.get(rrow, c) - y2.get(rrow, c)).abs() < 1e-6,
                    "row {rrow} leaked future information"
                );
            }
        }
        // The last position must change.
        assert!(y1.max_abs_diff(&y2) > 1e-3);
    }

    #[test]
    fn attention_probs_rows_sum_to_one() {
        let mut r = rng();
        let core = AttentionCore {
            batch: 2,
            seq: 4,
            heads: 1,
            head_dim: 3,
        };
        let q = Matrix::randn(8, 3, 1.0, &mut r);
        let k = Matrix::randn(8, 3, 1.0, &mut r);
        let v = Matrix::randn(8, 3, 1.0, &mut r);
        let (_, cache) = core.forward(&q, &k, &v);
        for p in &cache.probs {
            for row in 0..4 {
                let s: f32 = p.row(row).iter().sum();
                assert!((s - 1.0).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn attention_gradcheck_q() {
        let mut r = rng();
        let core = AttentionCore {
            batch: 1,
            seq: 3,
            heads: 1,
            head_dim: 2,
        };
        let q0 = Matrix::randn(3, 2, 1.0, &mut r);
        let k = Matrix::randn(3, 2, 1.0, &mut r);
        let v = Matrix::randn(3, 2, 1.0, &mut r);
        let dy = Matrix::randn(3, 2, 1.0, &mut r);
        let loss = |qs: &[f32]| {
            let q = Matrix::from_vec(3, 2, qs.to_vec());
            let (y, _) = core.forward(&q, &k, &v);
            y.as_slice()
                .iter()
                .zip(dy.as_slice())
                .map(|(a, b)| a * b)
                .sum::<f32>()
        };
        let (_, cache) = core.forward(&q0, &k, &v);
        let (dq, _, _) = core.backward(&q0, &k, &v, &cache, &dy);
        numeric_vs_analytic(&loss, q0.as_slice(), dq.as_slice(), 3e-2);
    }

    #[test]
    fn attention_gradcheck_k_and_v() {
        let mut r = rng();
        let core = AttentionCore {
            batch: 1,
            seq: 3,
            heads: 1,
            head_dim: 2,
        };
        let q = Matrix::randn(3, 2, 1.0, &mut r);
        let k0 = Matrix::randn(3, 2, 1.0, &mut r);
        let v0 = Matrix::randn(3, 2, 1.0, &mut r);
        let dy = Matrix::randn(3, 2, 1.0, &mut r);
        let (_, cache) = core.forward(&q, &k0, &v0);
        let (_, dk, dv) = core.backward(&q, &k0, &v0, &cache, &dy);
        let loss_k = |ks: &[f32]| {
            let k = Matrix::from_vec(3, 2, ks.to_vec());
            let (y, _) = core.forward(&q, &k, &v0);
            y.as_slice()
                .iter()
                .zip(dy.as_slice())
                .map(|(a, b)| a * b)
                .sum::<f32>()
        };
        numeric_vs_analytic(&loss_k, k0.as_slice(), dk.as_slice(), 3e-2);
        let loss_v = |vs: &[f32]| {
            let v = Matrix::from_vec(3, 2, vs.to_vec());
            let (y, _) = core.forward(&q, &k0, &v);
            y.as_slice()
                .iter()
                .zip(dy.as_slice())
                .map(|(a, b)| a * b)
                .sum::<f32>()
        };
        numeric_vs_analytic(&loss_v, v0.as_slice(), dv.as_slice(), 3e-2);
    }

    #[test]
    fn embedding_lookup_and_scatter() {
        let mut r = rng();
        let mut emb = Embedding::new(10, 4, 3, &mut r);
        let toks = [1usize, 2, 3, 1]; // batch=1? here batch*seq=4, seq=4
        let x = emb.forward(&toks, 4);
        assert_eq!((x.rows(), x.cols()), (4, 3));
        // Row 0 = token 1 at position 0.
        for c in 0..3 {
            assert!((x.get(0, c) - emb.tokens.get(1, c) - emb.positions.get(0, c)).abs() < 1e-6);
        }
        let dy = Matrix::from_fn(4, 3, |_, _| 1.0);
        emb.backward(&toks, 4, &dy);
        // Token 1 appears twice → gradient 2 per column.
        for c in 0..3 {
            assert_eq!(emb.gtokens.get(1, c), 2.0);
            assert_eq!(emb.gtokens.get(2, c), 1.0);
            assert_eq!(emb.gtokens.get(0, c), 0.0);
        }
    }

    #[test]
    fn cross_entropy_uniform_logits() {
        let v = 8usize;
        let logits = Matrix::zeros(2, v);
        let (loss, d) = cross_entropy(&logits, &[3, 5]);
        assert!((loss - (v as f32).ln()).abs() < 1e-5);
        // Gradient: (1/V − 1{target})/N.
        assert!((d.get(0, 3) - (1.0 / v as f32 - 1.0) / 2.0).abs() < 1e-6);
        assert!((d.get(0, 0) - (1.0 / v as f32) / 2.0).abs() < 1e-6);
    }

    #[test]
    fn cross_entropy_gradcheck() {
        let mut r = rng();
        let l0 = Matrix::randn(3, 5, 1.0, &mut r);
        let targets = [0usize, 2, 4];
        let loss = |p: &[f32]| {
            let m = Matrix::from_vec(3, 5, p.to_vec());
            cross_entropy(&m, &targets).0
        };
        let (_, d) = cross_entropy(&l0, &targets);
        numeric_vs_analytic(&loss, l0.as_slice(), d.as_slice(), 3e-2);
    }
}
