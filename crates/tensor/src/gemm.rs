//! Matrix multiplication: a thread-parallel blocked implementation plus a
//! naive reference used to validate it.

use crate::Matrix;

/// Split `out` into `n`-wide rows and run `body(row_index, row)` on each,
/// fanning rows out across up to `available_parallelism` scoped threads.
/// Each row is written by exactly one thread, so results are bit-identical
/// to a serial loop regardless of thread count.
fn par_rows(out: &mut [f32], n: usize, body: impl Fn(usize, &mut [f32]) + Sync) {
    let rows = out.len().checked_div(n).unwrap_or(0);
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(rows.max(1));
    if threads <= 1 || rows <= 1 {
        for (i, row) in out.chunks_mut(n).enumerate() {
            body(i, row);
        }
        return;
    }
    let rows_per = rows.div_ceil(threads);
    std::thread::scope(|scope| {
        for (chunk_idx, chunk) in out.chunks_mut(rows_per * n).enumerate() {
            let body = &body;
            scope.spawn(move || {
                for (j, row) in chunk.chunks_mut(n).enumerate() {
                    body(chunk_idx * rows_per + j, row);
                }
            });
        }
    });
}

/// `C = A · B` (`m×k` times `k×n`), parallelized over row blocks.
pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let mut out = vec![0.0f32; m * n];
    par_rows(&mut out, n, |i, row| {
        let arow = a.row(i);
        // k-inner loop ordered for sequential access of B's rows.
        for (kk, &av) in arow.iter().enumerate().take(k) {
            if av == 0.0 {
                continue;
            }
            let brow = b.row(kk);
            for (o, &bv) in row.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
    });
    Matrix::from_vec(m, n, out)
}

/// `C = Aᵀ · B` (`k×m`ᵀ times `k×n`) without materializing the transpose.
pub fn matmul_tn(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.rows(), b.rows(), "outer dimensions must agree");
    let (k, m, n) = (a.rows(), a.cols(), b.cols());
    let mut out = vec![0.0f32; m * n];
    // Parallelize over output rows (columns of A).
    par_rows(&mut out, n, |i, row| {
        for kk in 0..k {
            let av = a.get(kk, i);
            if av == 0.0 {
                continue;
            }
            let brow = b.row(kk);
            for (o, &bv) in row.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
    });
    Matrix::from_vec(m, n, out)
}

/// `C = A · Bᵀ` (`m×k` times `n×k`ᵀ) without materializing the transpose.
pub fn matmul_nt(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols(), b.cols(), "inner dimensions must agree");
    let (m, _k, n) = (a.rows(), a.cols(), b.rows());
    let mut out = vec![0.0f32; m * n];
    par_rows(&mut out, n, |i, row| {
        let arow = a.row(i);
        for (j, o) in row.iter_mut().enumerate() {
            let brow = b.row(j);
            let mut acc = 0.0f32;
            for (av, bv) in arow.iter().zip(brow) {
                acc += av * bv;
            }
            *o = acc;
        }
    });
    Matrix::from_vec(m, n, out)
}

/// Textbook triple loop, for validation.
pub fn matmul_naive(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols(), b.rows());
    Matrix::from_fn(a.rows(), b.cols(), |i, j| {
        (0..a.cols()).map(|kk| a.get(i, kk) * b.get(kk, j)).sum()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rand_matrix(r: usize, c: usize, seed: u64) -> Matrix {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        Matrix::randn(r, c, 1.0, &mut rng)
    }

    #[test]
    fn matmul_matches_naive() {
        let a = rand_matrix(7, 13, 1);
        let b = rand_matrix(13, 5, 2);
        let fast = matmul(&a, &b);
        let slow = matmul_naive(&a, &b);
        assert!(fast.max_abs_diff(&slow) < 1e-4);
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let a = rand_matrix(9, 4, 3);
        let b = rand_matrix(9, 6, 4);
        let fast = matmul_tn(&a, &b);
        let slow = matmul_naive(&a.transpose(), &b);
        assert!(fast.max_abs_diff(&slow) < 1e-4);
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let a = rand_matrix(5, 8, 5);
        let b = rand_matrix(11, 8, 6);
        let fast = matmul_nt(&a, &b);
        let slow = matmul_naive(&a, &b.transpose());
        assert!(fast.max_abs_diff(&slow) < 1e-4);
    }

    #[test]
    fn identity_is_neutral() {
        let a = rand_matrix(6, 6, 7);
        let eye = Matrix::from_fn(6, 6, |r, c| if r == c { 1.0 } else { 0.0 });
        assert!(matmul(&a, &eye).max_abs_diff(&a) < 1e-6);
        assert!(matmul(&eye, &a).max_abs_diff(&a) < 1e-6);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn shape_mismatch_panics() {
        matmul(&Matrix::zeros(2, 3), &Matrix::zeros(4, 2));
    }
}
