//! Finite-difference gradient checking.

/// Central-difference numeric gradient of `f` at `x`.
pub fn numeric_grad(f: &dyn Fn(&[f32]) -> f32, x: &[f32], eps: f32) -> Vec<f32> {
    let mut grad = Vec::with_capacity(x.len());
    let mut xp = x.to_vec();
    for i in 0..x.len() {
        let orig = xp[i];
        xp[i] = orig + eps;
        let hi = f(&xp);
        xp[i] = orig - eps;
        let lo = f(&xp);
        xp[i] = orig;
        grad.push((hi - lo) / (2.0 * eps));
    }
    grad
}

/// Assert that `analytic` matches the numeric gradient of `f` at `x` within
/// relative tolerance `tol` (per element, normalized by the larger scale).
///
/// # Panics
/// On mismatch, with the offending index and values.
pub fn numeric_vs_analytic(f: &dyn Fn(&[f32]) -> f32, x: &[f32], analytic: &[f32], tol: f32) {
    assert_eq!(x.len(), analytic.len());
    let numeric = numeric_grad(f, x, 1e-2);
    for (i, (&n, &a)) in numeric.iter().zip(analytic).enumerate() {
        let scale = n.abs().max(a.abs()).max(1.0);
        assert!(
            (n - a).abs() / scale < tol,
            "gradient mismatch at {i}: numeric {n} vs analytic {a}"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quadratic_gradient() {
        let f = |x: &[f32]| x.iter().map(|v| v * v).sum::<f32>();
        let x = [1.0f32, -2.0, 0.5];
        let g = numeric_grad(&f, &x, 1e-3);
        for (gi, xi) in g.iter().zip(&x) {
            assert!((gi - 2.0 * xi).abs() < 1e-2);
        }
    }

    #[test]
    #[should_panic(expected = "gradient mismatch")]
    fn detects_wrong_gradient() {
        let f = |x: &[f32]| x[0] * x[0];
        numeric_vs_analytic(&f, &[3.0], &[0.0], 1e-2);
    }
}
