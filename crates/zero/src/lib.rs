//! ZeRO-3 (fully-sharded data-parallel) baseline cost simulator (§5.2).
//!
//! The paper compares PTD-P against DeepSpeed's ZeRO-3 *without* model
//! parallelism: every rank processes its share of the batch through the
//! *full* model, with parameters, gradients, and optimizer state sharded
//! across all `n` data-parallel ranks. Before computing a layer, a rank
//! all-gathers that layer's fp16 parameters from their owners; in the
//! backward pass parameters are gathered again and gradients leave via a
//! reduce-scatter.
//!
//! Per-iteration traffic per rank is therefore ≈ `3 · 2P` bytes
//! (two all-gathers + one reduce-scatter of the fp16 parameter/gradient
//! footprint), regardless of the per-rank batch — which is why, with the
//! global batch held fixed, doubling the GPU count halves per-rank compute
//! but leaves communication untouched, collapsing per-GPU throughput
//! (Figure 10's diverging curves). Communication partially overlaps with
//! compute via bucket prefetching: the larger of the two terms governs and
//! roughly half of the smaller one stays exposed.

use megatron_cluster::ClusterSpec;
use megatron_model::ops::{self, OpListParams};
use megatron_model::{memory, GptConfig, BYTES_FP16};

/// Which ZeRO optimization stage to model (Rajbhandari et al., the paper's
/// §6 "Sharded Data Parallelism" related work).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ZeroStage {
    /// Optimizer state sharded; parameters and gradients replicated.
    /// Communication identical to vanilla data parallelism.
    One,
    /// + gradients sharded (reduce-scatter instead of all-reduce, then
    ///   an all-gather of updated parameters).
    Two,
    /// + parameters sharded: per-layer all-gathers in forward and
    ///   backward (the §5.2 comparison point).
    Three,
    /// ZeRO-Infinity: stage 3 with parameters resident on NVMe, streamed in
    /// per layer. Tiny memory, brutal bandwidth bill.
    Infinity,
}

/// A ZeRO training run (no model parallelism).
#[derive(Debug, Clone)]
pub struct ZeroRun {
    /// Model architecture.
    pub model: GptConfig,
    /// Hardware.
    pub cluster: ClusterSpec,
    /// Global batch size `B`.
    pub batch: u64,
    /// Microbatch size `b` (per-rank grad-accumulation granularity).
    pub microbatch: u64,
    /// Activation recomputation (on at these scales, as in the paper).
    pub recompute: bool,
    /// ZeRO stage (the paper compares against stage 3).
    pub stage: ZeroStage,
    /// Per-node NVMe streaming bandwidth for [`ZeroStage::Infinity`], B/s.
    pub nvme_bandwidth: f64,
}

/// Simulated iteration metrics for a ZeRO-3 run.
#[derive(Debug, Clone, Copy)]
pub struct ZeroReport {
    /// Seconds per training iteration.
    pub iteration_time: f64,
    /// Achieved teraFLOP/s per GPU (Eq. 3 FLOP convention).
    pub tflops_per_gpu: f64,
    /// Percent of device peak.
    pub pct_of_peak: f64,
    /// Compute seconds per rank (excludes exposed communication).
    pub compute_time: f64,
    /// Parameter all-gather + gradient reduce-scatter seconds per rank
    /// (before overlap).
    pub comm_time: f64,
    /// Model-state bytes per rank (sharded) + stashed activations.
    pub memory_bytes_per_gpu: u64,
}

impl ZeroRun {
    /// Construct a stage-3 run with recomputation enabled (the paper's
    /// comparison configuration).
    pub fn new(model: GptConfig, cluster: ClusterSpec, batch: u64, microbatch: u64) -> Self {
        ZeroRun {
            model,
            cluster,
            batch,
            microbatch,
            recompute: true,
            stage: ZeroStage::Three,
            nvme_bandwidth: 25e9, // 8 NVMe drives/node, ~3 GB/s each
        }
    }

    /// Builder-style stage selection.
    #[must_use]
    pub fn with_stage(mut self, stage: ZeroStage) -> Self {
        self.stage = stage;
        self
    }

    /// Number of ranks (= all GPUs; ZeRO-3 is pure data parallelism).
    pub fn n_ranks(&self) -> u64 {
        self.cluster.total_gpus() as u64
    }

    /// Per-rank microbatch count (grad accumulation steps).
    pub fn accumulation_steps(&self) -> u64 {
        let n = self.n_ranks();
        assert!(
            self.batch.is_multiple_of(n * self.microbatch),
            "batch {} must divide over {} ranks × microbatch {}",
            self.batch,
            n,
            self.microbatch
        );
        self.batch / (n * self.microbatch)
    }

    /// Simulate one iteration.
    pub fn simulate(&self) -> ZeroReport {
        let n = self.n_ranks();
        let k = self.accumulation_steps();
        let gpu = &self.cluster.gpu;
        let params = OpListParams {
            microbatch: self.microbatch,
            tensor_parallel: 1,
            fused: true,
        };
        let l = self.model.num_layers;

        // Compute per microbatch: full model forward / backward(+recompute).
        let (lf, _) = ops::price_local(&ops::layer_forward(&self.model, params), gpu);
        let (lb, _) = ops::price_local(&ops::layer_backward(&self.model, params), gpu);
        let (ef, _) = ops::price_local(&ops::embedding_forward(&self.model, params), gpu);
        let (eb, _) = ops::price_local(&ops::embedding_backward(&self.model, params), gpu);
        let (gf, _) = ops::price_local(&ops::logit_forward(&self.model, params), gpu);
        let (gb, _) = ops::price_local(&ops::logit_backward(&self.model, params), gpu);
        let mut fwd = l as f64 * lf.seconds + ef.seconds + gf.seconds;
        let mut bwd = l as f64 * lb.seconds + eb.seconds + gb.seconds;
        if self.recompute {
            bwd += l as f64 * lf.seconds;
        }
        fwd *= k as f64;
        bwd *= k as f64;
        let compute_time = fwd + bwd;

        // Communication per iteration per rank: each parameter-gather moves
        // (n−1)/n of the fp16 model through the rank's own network port;
        // DeepSpeed re-gathers in the backward pass and reduce-scatters
        // fp16 gradients. The bottleneck link is InfiniBand as soon as the
        // run spans nodes.
        let p_bytes = (self.model.params_exact() * BYTES_FP16) as f64;
        let frac = (n as f64 - 1.0) / n as f64;
        let bw = if self.cluster.n_nodes > 1 {
            self.cluster.node.ib_bandwidth
        } else {
            self.cluster.node.nvlink_bandwidth
        };
        let lat = if self.cluster.n_nodes > 1 {
            self.cluster.node.ib_latency
        } else {
            self.cluster.node.nvlink_latency
        };
        // Parameter-traffic multiples of 2P per rank, by stage:
        //   stage 1: gradient all-reduce        → 2 volumes (RS+AG phases)
        //   stage 2: grad reduce-scatter + param all-gather → 2 volumes
        //   stage 3: fwd gather + bwd gather + grad reduce-scatter → 3
        //   infinity: as stage 3, plus NVMe streaming handled below.
        let volumes = match self.stage {
            ZeroStage::One | ZeroStage::Two => 2.0,
            ZeroStage::Three | ZeroStage::Infinity => 3.0,
        };
        let volume_time = volumes * p_bytes * frac / bw;
        // Ring collectives pay latency steps per layer-granular call.
        let calls = match self.stage {
            ZeroStage::One => 1.0,
            ZeroStage::Two => 2.0,
            ZeroStage::Three | ZeroStage::Infinity => 3.0,
        };
        let latency_time = calls * l as f64 * (n as f64 - 1.0).min(2.0 * n as f64) * lat;
        let mut comm_time = volume_time + latency_time;
        if self.stage == ZeroStage::Infinity {
            // Parameters stream from NVMe twice per iteration (fwd + bwd)
            // and the sharded fp32 optimizer block round-trips once; the
            // node's GPUs share its NVMe bandwidth.
            let g = self.cluster.node.gpus_per_node as f64;
            let param_stream = 2.0 * p_bytes * (g / n as f64);
            let optim_stream = 2.0 * (12.0 * self.model.params_exact() as f64 / n as f64) * g;
            comm_time += (param_stream + optim_stream) / self.nvme_bandwidth;
        }

        // Overlap: parameter prefetch hides part of the smaller term behind
        // the larger, but bucketed gathers and per-layer synchronization
        // points expose roughly half of it in practice (DeepSpeed's
        // prefetch looks ahead one bucket only).
        let iteration_time =
            compute_time.max(comm_time) + 0.5 * compute_time.min(comm_time) + self.optimizer_time();

        let flops = self.model.flops_per_iteration(self.batch, self.recompute);
        let tflops_per_gpu = flops / iteration_time / n as f64 / 1e12;

        // Memory by stage: replicated fp16 params (4 B incl. grads) and the
        // 12 B/param fp32 optimizer block shard out progressively.
        let p_exact = self.model.params_exact();
        let state = match self.stage {
            ZeroStage::One => 4 * p_exact + 12 * p_exact / n,
            ZeroStage::Two => 2 * p_exact + (2 + 12) * p_exact / n,
            ZeroStage::Three => p_exact * memory::MODEL_STATE_BYTES_PER_PARAM / n,
            // Infinity keeps only a double-buffered working layer resident;
            // parameters, gradients, and optimizer state live on NVMe.
            ZeroStage::Infinity => 4 * (p_exact / l.max(1)),
        };
        let stash = if self.recompute {
            l * memory::activation_bytes_recompute(&self.model, self.microbatch)
        } else {
            l * memory::activation_bytes_full(&self.model, self.microbatch, 1)
        };
        let working = memory::activation_bytes_full(&self.model, self.microbatch, 1);

        ZeroReport {
            iteration_time,
            tflops_per_gpu,
            pct_of_peak: 100.0 * tflops_per_gpu * 1e12 / gpu.peak_matmul_flops,
            compute_time,
            comm_time,
            memory_bytes_per_gpu: state + stash + working,
        }
    }

    /// Sharded Adam step: each rank updates only its `P/n` shard.
    fn optimizer_time(&self) -> f64 {
        let shard = self.model.params_exact() / self.n_ranks();
        self.cluster.gpu.elementwise(shard * 30, 4).seconds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use megatron_model::zoo;

    fn run(gpus: usize, batch: u64, b: u64) -> ZeroReport {
        ZeroRun::new(zoo::gpt3_175b(), ClusterSpec::selene(gpus), batch, b).simulate()
    }

    #[test]
    fn throughput_collapses_when_gpus_double_at_fixed_batch() {
        // Figure 10 / Table 2: 384→768→1536 GPUs at B=1536 roughly halves
        // per-GPU throughput each doubling (144 → 88 → 44 in the paper).
        let a = run(384, 1536, 4);
        let b = run(768, 1536, 2);
        let c = run(1536, 1536, 1);
        assert!(a.tflops_per_gpu > 1.4 * b.tflops_per_gpu, "{a:?} vs {b:?}");
        assert!(b.tflops_per_gpu > 1.4 * c.tflops_per_gpu);
    }

    #[test]
    fn comm_time_roughly_constant_across_scale() {
        let a = run(384, 1536, 4);
        let b = run(1536, 1536, 1);
        let rel = (a.comm_time - b.comm_time).abs() / a.comm_time;
        assert!(rel < 0.25, "comm {} vs {}", a.comm_time, b.comm_time);
    }

    #[test]
    fn compute_scales_down_with_more_gpus() {
        let a = run(384, 1536, 4);
        let b = run(1536, 1536, 1);
        assert!(a.compute_time > 3.0 * b.compute_time);
    }

    #[test]
    fn first_row_throughput_in_plausible_band() {
        // Paper: 144 TF/s per GPU for 175B on 384 GPUs with b=4.
        let r = run(384, 1536, 4);
        assert!(
            r.tflops_per_gpu > 110.0 && r.tflops_per_gpu < 180.0,
            "got {}",
            r.tflops_per_gpu
        );
    }

    #[test]
    fn memory_shards_with_n() {
        let a = run(384, 1536, 4);
        let b = run(1536, 1536, 1);
        assert!(b.memory_bytes_per_gpu < a.memory_bytes_per_gpu);
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn rejects_indivisible_batch() {
        run(384, 1000, 4);
    }

    #[test]
    fn stage_memory_ordering() {
        // ZeRO's central claim: memory drops monotonically with stage.
        let model = zoo::gpt3_175b();
        let cluster = ClusterSpec::selene(384);
        let mem = |stage| {
            ZeroRun::new(model.clone(), cluster.clone(), 1536, 4)
                .with_stage(stage)
                .simulate()
                .memory_bytes_per_gpu
        };
        let (s1, s2, s3, inf) = (
            mem(ZeroStage::One),
            mem(ZeroStage::Two),
            mem(ZeroStage::Three),
            mem(ZeroStage::Infinity),
        );
        assert!(s1 > s2 && s2 > s3 && inf <= s3, "{s1} {s2} {s3} {inf}");
        // Stages 1–2 cannot hold a 175B model (replicated fp16 params).
        assert!(s2 > 80 * (1u64 << 30));
        assert!(s3 < 80 * (1u64 << 30));
    }

    #[test]
    fn lower_stages_communicate_less() {
        let model = zoo::gpt3_175b();
        let cluster = ClusterSpec::selene(384);
        let comm = |stage| {
            ZeroRun::new(model.clone(), cluster.clone(), 1536, 4)
                .with_stage(stage)
                .simulate()
                .comm_time
        };
        assert!(comm(ZeroStage::One) < comm(ZeroStage::Three));
        assert!(comm(ZeroStage::Two) < comm(ZeroStage::Three));
    }

    #[test]
    fn infinity_is_slow_but_tiny() {
        let model = zoo::gpt3_175b();
        let cluster = ClusterSpec::selene(64); // "small number of GPUs"
        let s3 = ZeroRun::new(model.clone(), cluster.clone(), 64, 1).simulate();
        let inf = ZeroRun::new(model, cluster, 64, 1)
            .with_stage(ZeroStage::Infinity)
            .simulate();
        assert!(inf.memory_bytes_per_gpu < s3.memory_bytes_per_gpu);
        assert!(
            inf.tflops_per_gpu < s3.tflops_per_gpu,
            "NVMe streaming must cost throughput: {} vs {}",
            inf.tflops_per_gpu,
            s3.tflops_per_gpu
        );
    }
}
