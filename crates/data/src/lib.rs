//! Synthetic training-data substrate.
//!
//! The paper trains on a proprietary corpus we obviously don't have; its
//! throughput results are content-independent (only tensor shapes matter),
//! but the *correctness* story benefits from data with learnable structure.
//! This crate provides:
//!
//! - [`MarkovCorpus`]: a seeded first-order Markov token source with a
//!   known entropy floor, so a real training run can demonstrably learn
//!   (loss approaches the source's conditional entropy, and cannot beat it);
//! - [`pack_documents`]: GPT-style document packing into fixed-length
//!   training sequences with next-token targets;
//! - [`ShardedLoader`]: the §2.1 data-parallel contract — each replica sees
//!   a disjoint, deterministic shard of every global batch, and the union
//!   of shards is exactly the batch.

mod corpus;
mod loader;

pub use corpus::MarkovCorpus;
pub use loader::{pack_documents, Batch, ShardedLoader};
