//! Seeded Markov-chain token source with a computable entropy floor.

use rand::distributions::{Distribution, WeightedIndex};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A first-order Markov chain over a token vocabulary.
///
/// Transition rows are sparse (each token can be followed by only
/// `branching` successors, with geometric-ish weights), giving a source
/// whose conditional entropy is far below `ln(V)` — a model that learns the
/// statistics shows a clearly falling loss, and no model can beat the
/// entropy floor (tested).
pub struct MarkovCorpus {
    vocab: usize,
    successors: Vec<Vec<(usize, f64)>>, // per token: (next, prob)
    rng: StdRng,
    state: usize,
}

impl MarkovCorpus {
    /// Build a corpus over `vocab` tokens with `branching` successors per
    /// token, from a seed (fully deterministic).
    pub fn new(vocab: usize, branching: usize, seed: u64) -> Self {
        assert!(vocab >= 2 && branching >= 1 && branching <= vocab);
        let mut rng = StdRng::seed_from_u64(seed);
        let successors = (0..vocab)
            .map(|_| {
                // Pick `branching` distinct successors with decaying weights.
                let mut next: Vec<usize> = Vec::with_capacity(branching);
                while next.len() < branching {
                    let cand = rng.gen_range(0..vocab);
                    if !next.contains(&cand) {
                        next.push(cand);
                    }
                }
                let mut weight = 1.0f64;
                let mut row: Vec<(usize, f64)> = Vec::with_capacity(branching);
                for tok in next {
                    row.push((tok, weight));
                    weight *= 0.5;
                }
                let total: f64 = row.iter().map(|(_, w)| w).sum();
                for (_, w) in &mut row {
                    *w /= total;
                }
                row
            })
            .collect();
        let state = rng.gen_range(0..vocab);
        MarkovCorpus {
            vocab,
            successors,
            rng,
            state,
        }
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> usize {
        self.vocab
    }

    /// Draw the next token.
    pub fn next_token(&mut self) -> usize {
        let row = &self.successors[self.state];
        let dist = WeightedIndex::new(row.iter().map(|(_, w)| *w)).expect("valid weights");
        let idx = dist.sample(&mut self.rng);
        self.state = row[idx].0;
        self.state
    }

    /// Draw a document of `len` tokens.
    pub fn document(&mut self, len: usize) -> Vec<usize> {
        (0..len).map(|_| self.next_token()).collect()
    }

    /// Mean conditional entropy of the source in nats (uniform average over
    /// states — the loss floor for a perfect next-token model up to the
    /// stationary-distribution correction).
    pub fn conditional_entropy(&self) -> f64 {
        let per_state: f64 = self
            .successors
            .iter()
            .map(|row| -row.iter().map(|(_, p)| p * p.ln()).sum::<f64>())
            .sum();
        per_state / self.vocab as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = MarkovCorpus::new(50, 4, 9);
        let mut b = MarkovCorpus::new(50, 4, 9);
        assert_eq!(a.document(100), b.document(100));
        let mut c = MarkovCorpus::new(50, 4, 10);
        assert_ne!(a.document(100), c.document(100));
    }

    #[test]
    fn tokens_in_range() {
        let mut c = MarkovCorpus::new(17, 3, 1);
        assert!(c.document(500).iter().all(|&t| t < 17));
    }

    #[test]
    fn transitions_respect_sparsity() {
        // Observed successors of each token must be within its branching set.
        let mut c = MarkovCorpus::new(10, 2, 3);
        let doc = c.document(2000);
        for w in doc.windows(2) {
            let row = &c.successors[w[0]];
            assert!(row.iter().any(|(t, _)| *t == w[1]), "{:?}", w);
        }
    }

    #[test]
    fn entropy_floor_below_uniform() {
        let c = MarkovCorpus::new(64, 4, 5);
        let h = c.conditional_entropy();
        assert!(h > 0.0 && h < (64f64).ln());
        // 4 successors → at most ln(4) nats.
        assert!(h <= (4f64).ln() + 1e-9);
    }

    #[test]
    fn empirical_entropy_matches_model() {
        // Long-run empirical conditional entropy ≈ analytic (within noise).
        let mut c = MarkovCorpus::new(16, 2, 8);
        let doc = c.document(200_000);
        let mut counts = vec![vec![0u32; 16]; 16];
        for w in doc.windows(2) {
            counts[w[0]][w[1]] += 1;
        }
        let total: u32 = counts.iter().map(|row| row.iter().sum::<u32>()).sum();
        // H = Σ_s (n_s/N) Σ_t -p(t|s) ln p(t|s).
        let mut h_cond = 0.0f64;
        for row in &counts {
            let n: u32 = row.iter().sum();
            if n == 0 {
                continue;
            }
            let hs: f64 = row
                .iter()
                .filter(|&&cnt| cnt > 0)
                .map(|&cnt| {
                    let p = cnt as f64 / n as f64;
                    -p * p.ln()
                })
                .sum();
            h_cond += (n as f64 / total as f64) * hs;
        }
        let analytic = c.conditional_entropy();
        assert!(
            (h_cond - analytic).abs() < 0.15,
            "empirical {h_cond} vs analytic {analytic}"
        );
    }
}
