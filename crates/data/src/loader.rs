//! Document packing and the data-parallel sharded loader (§2.1: "the input
//! dataset is sharded").

use crate::MarkovCorpus;

/// One global training batch: `tokens` and next-token `targets`, both
/// `batch · seq` long, grouped by sample.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Batch {
    /// Input token ids.
    pub tokens: Vec<usize>,
    /// Next-token targets (shifted by one; document-final targets wrap to
    /// the next document, as GPT packing does).
    pub targets: Vec<usize>,
    /// Samples in the batch.
    pub batch: usize,
    /// Sequence length.
    pub seq: usize,
}

/// Pack a stream of documents into `count` training sequences of length
/// `seq` (GPT-style: documents are concatenated and sliced; the target of
/// position i is the token at position i+1 of the concatenated stream).
pub fn pack_documents(
    corpus: &mut MarkovCorpus,
    doc_len: usize,
    count: usize,
    seq: usize,
) -> Vec<(Vec<usize>, Vec<usize>)> {
    assert!(doc_len >= 2 && seq >= 1);
    let needed = count * seq + 1;
    let mut stream = Vec::with_capacity(needed + doc_len);
    while stream.len() < needed {
        stream.extend(corpus.document(doc_len));
    }
    (0..count)
        .map(|i| {
            let lo = i * seq;
            (
                stream[lo..lo + seq].to_vec(),
                stream[lo + 1..lo + seq + 1].to_vec(),
            )
        })
        .collect()
}

/// Deterministic, sharded batch source: every data-parallel replica draws
/// its disjoint slice of the same global batch sequence.
pub struct ShardedLoader {
    sequences: Vec<(Vec<usize>, Vec<usize>)>,
    batch: usize,
    seq: usize,
    cursor: usize,
}

impl ShardedLoader {
    /// Build a loader over pre-packed `sequences` with global batch size
    /// `batch`.
    pub fn new(sequences: Vec<(Vec<usize>, Vec<usize>)>, batch: usize) -> Self {
        assert!(!sequences.is_empty());
        let seq = sequences[0].0.len();
        assert!(sequences
            .iter()
            .all(|(t, g)| t.len() == seq && g.len() == seq));
        assert!(
            sequences.len() >= batch,
            "need at least one full batch of sequences"
        );
        ShardedLoader {
            sequences,
            batch,
            seq,
            cursor: 0,
        }
    }

    /// Convenience: synthesize everything from a corpus.
    pub fn from_corpus(
        corpus: &mut MarkovCorpus,
        batch: usize,
        seq: usize,
        iterations: usize,
    ) -> Self {
        let sequences = pack_documents(corpus, seq * 2, batch * iterations, seq);
        ShardedLoader::new(sequences, batch)
    }

    /// Number of full global batches available.
    pub fn batches_available(&self) -> usize {
        self.sequences.len() / self.batch
    }

    /// The next GLOBAL batch (advances the cursor). Returns `None` when the
    /// sequences are exhausted.
    pub fn next_global(&mut self) -> Option<Batch> {
        if self.cursor + self.batch > self.sequences.len() {
            return None;
        }
        let mut tokens = Vec::with_capacity(self.batch * self.seq);
        let mut targets = Vec::with_capacity(self.batch * self.seq);
        for (t, g) in &self.sequences[self.cursor..self.cursor + self.batch] {
            tokens.extend_from_slice(t);
            targets.extend_from_slice(g);
        }
        self.cursor += self.batch;
        Some(Batch {
            tokens,
            targets,
            batch: self.batch,
            seq: self.seq,
        })
    }

    /// Replica `replica` of `replicas`' shard of a global batch (§2.1):
    /// contiguous sample range, disjoint across replicas, union = batch.
    pub fn shard(batch: &Batch, replica: usize, replicas: usize) -> Batch {
        assert!(replica < replicas && batch.batch.is_multiple_of(replicas));
        let per = batch.batch / replicas;
        let lo = replica * per * batch.seq;
        let hi = lo + per * batch.seq;
        Batch {
            tokens: batch.tokens[lo..hi].to_vec(),
            targets: batch.targets[lo..hi].to_vec(),
            batch: per,
            seq: batch.seq,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packing_preserves_next_token_relationship() {
        let mut c = MarkovCorpus::new(32, 3, 4);
        let seqs = pack_documents(&mut c, 10, 6, 8);
        assert_eq!(seqs.len(), 6);
        for (t, g) in &seqs {
            assert_eq!(t.len(), 8);
            // target[i] == token[i+1] within a sequence.
            for i in 0..7 {
                assert_eq!(g[i], t[i + 1]);
            }
        }
        // Consecutive sequences continue the stream: target of the last
        // position equals the first token of the next sequence.
        for w in seqs.windows(2) {
            assert_eq!(w[0].1[7], w[1].0[0]);
        }
    }

    #[test]
    fn shards_partition_the_batch() {
        let mut c = MarkovCorpus::new(16, 2, 2);
        let mut loader = ShardedLoader::from_corpus(&mut c, 8, 4, 3);
        let global = loader.next_global().unwrap();
        let mut reassembled_tokens = Vec::new();
        for r in 0..4 {
            let shard = ShardedLoader::shard(&global, r, 4);
            assert_eq!(shard.batch, 2);
            reassembled_tokens.extend(shard.tokens);
        }
        assert_eq!(reassembled_tokens, global.tokens);
    }

    #[test]
    fn loader_is_deterministic_and_finite() {
        let mk = || {
            let mut c = MarkovCorpus::new(16, 2, 7);
            ShardedLoader::from_corpus(&mut c, 4, 8, 2)
        };
        let mut a = mk();
        let mut b = mk();
        assert_eq!(a.batches_available(), 2);
        for _ in 0..2 {
            assert_eq!(a.next_global(), b.next_global());
        }
        assert!(a.next_global().is_none());
    }

    #[test]
    #[should_panic(expected = "at least one full batch")]
    fn rejects_short_data() {
        let mut c = MarkovCorpus::new(16, 2, 7);
        let seqs = pack_documents(&mut c, 8, 2, 4);
        ShardedLoader::new(seqs, 4);
    }
}
