//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so the real `rand` cannot be
//! fetched. This shim reimplements the narrow API surface the workspace uses
//! — seeded [`rngs::StdRng`], [`Rng::gen_range`] over integer and float
//! ranges, and the [`distributions`] trio `Uniform` / `WeightedIndex` /
//! `Distribution` — on top of the xoshiro256** generator. Everything is
//! deterministic per seed and stable across platforms, which is the only
//! property the repo actually relies on (seeded reproducibility for tests
//! and synthetic data). Streams differ from the real `rand`; no seed in
//! this repo encodes an upstream-compatible expectation.

/// Core source of randomness: a 64-bit word stream.
pub trait RngCore {
    /// Next raw 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32-bit word (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a half-open or inclusive range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: Into<UniformRange<T>>,
    {
        let UniformRange { low, high_incl } = range.into();
        T::sample_between(self, low, high_incl)
    }

    /// Uniform sample of the type's natural unit range (`[0, 1)` for
    /// floats).
    fn gen<T: SampleUnit>(&mut self) -> T {
        T::sample_unit(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p));
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable construction, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Build the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A `(low, high-inclusive)` pair normalized from range syntax.
#[derive(Debug, Clone, Copy)]
pub struct UniformRange<T> {
    low: T,
    high_incl: T,
}

impl<T: SampleUniform> From<std::ops::Range<T>> for UniformRange<T> {
    fn from(r: std::ops::Range<T>) -> Self {
        assert!(r.start < r.end, "empty range in gen_range");
        UniformRange {
            low: r.start,
            high_incl: T::before(r.end),
        }
    }
}

impl<T: SampleUniform> From<std::ops::RangeInclusive<T>> for UniformRange<T> {
    fn from(r: std::ops::RangeInclusive<T>) -> Self {
        let (low, high_incl) = r.into_inner();
        assert!(low <= high_incl, "empty range in gen_range");
        UniformRange { low, high_incl }
    }
}

/// Types uniformly sampleable over a range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Largest value strictly below `end` (for half-open integer ranges;
    /// floats return `end` itself and exclude it during sampling).
    fn before(end: Self) -> Self;
    /// Uniform draw from `[low, high]` (floats: `[low, high)`).
    fn sample_between<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn before(end: Self) -> Self {
                end - 1
            }
            fn sample_between<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                let span = (high as u64).wrapping_sub(low as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width range: any word is uniform.
                    return rng.next_u64() as Self;
                }
                // Debiased multiply-shift (Lemire). The rejection zone is
                // tiny for the small spans used here.
                let zone = u64::MAX - (u64::MAX - span + 1) % span;
                loop {
                    let v = rng.next_u64();
                    if v <= zone {
                        return low.wrapping_add((v % span) as Self);
                    }
                }
            }
        }
    )*};
}

impl_uniform_int!(usize, u64, u32, i64, i32);

impl SampleUniform for f64 {
    fn before(end: Self) -> Self {
        end
    }
    fn sample_between<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        low + (high - low) * unit_f64(rng.next_u64())
    }
}

impl SampleUniform for f32 {
    fn before(end: Self) -> Self {
        end
    }
    fn sample_between<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        low + (high - low) * unit_f64(rng.next_u64()) as f32
    }
}

/// Types with a natural unit-interval sample.
pub trait SampleUnit {
    /// Sample the unit range.
    fn sample_unit<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl SampleUnit for f64 {
    fn sample_unit<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl SampleUnit for f32 {
    fn sample_unit<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64()) as f32
    }
}

impl SampleUnit for u64 {
    fn sample_unit<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

/// Map a raw word to `[0, 1)` with 53 bits of precision.
#[inline]
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256** — the workspace's standard seeded generator.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed, per the xoshiro authors'
            // recommendation (never yields the all-zero state).
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let out = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            out
        }
    }
}

/// The distribution objects the workspace samples from.
pub mod distributions {
    use super::{Rng, RngCore, SampleUniform, UniformRange};

    /// A reusable sampling recipe.
    pub trait Distribution<T> {
        /// Draw one value.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// Uniform distribution over `[low, high)`.
    #[derive(Debug, Clone, Copy)]
    pub struct Uniform<T> {
        low: T,
        high_incl: T,
    }

    impl<T: SampleUniform> Uniform<T> {
        /// Half-open uniform distribution.
        pub fn new(low: T, high: T) -> Self {
            let UniformRange { low, high_incl } = (low..high).into();
            Uniform { low, high_incl }
        }

        /// Inclusive uniform distribution.
        pub fn new_inclusive(low: T, high: T) -> Self {
            Uniform {
                low,
                high_incl: high,
            }
        }
    }

    impl<T: SampleUniform> Distribution<T> for Uniform<T> {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
            T::sample_between(rng, self.low, self.high_incl)
        }
    }

    /// Error from [`WeightedIndex::new`].
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct WeightedError;

    impl std::fmt::Display for WeightedError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "weights must be non-negative with a positive sum")
        }
    }

    impl std::error::Error for WeightedError {}

    /// Sample indices proportionally to a weight list.
    #[derive(Debug, Clone)]
    pub struct WeightedIndex {
        /// Cumulative weights (strictly increasing at sampleable indices).
        cumulative: Vec<f64>,
        total: f64,
    }

    impl WeightedIndex {
        /// Build from an iterator of non-negative weights.
        pub fn new<I>(weights: I) -> Result<Self, WeightedError>
        where
            I: IntoIterator,
            I::Item: Into<f64>,
        {
            let mut cumulative = Vec::new();
            let mut total = 0.0f64;
            for w in weights {
                let w: f64 = w.into();
                if !w.is_finite() || w < 0.0 {
                    return Err(WeightedError);
                }
                total += w;
                cumulative.push(total);
            }
            if cumulative.is_empty() || total <= 0.0 {
                return Err(WeightedError);
            }
            Ok(WeightedIndex { cumulative, total })
        }
    }

    impl Distribution<usize> for WeightedIndex {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
            let x = rng.gen::<f64>() * self.total;
            // First cumulative weight strictly above x; zero-weight entries
            // are never selected (their cumulative equals the predecessor).
            match self
                .cumulative
                .binary_search_by(|c| c.partial_cmp(&x).expect("finite weights"))
            {
                Ok(i) | Err(i) => i.min(self.cumulative.len() - 1),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::distributions::{Distribution, Uniform, WeightedIndex};
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
        let mut c = StdRng::seed_from_u64(43);
        let same: usize = (0..100)
            .filter(|_| a.gen_range(0u64..1 << 40) == c.gen_range(0u64..1 << 40))
            .count();
        assert!(same < 3, "different seeds should diverge");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&f));
            let i = rng.gen_range(5u64..=5);
            assert_eq!(i, 5);
        }
    }

    #[test]
    fn integer_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 8];
        for _ in 0..80_000 {
            counts[rng.gen_range(0usize..8)] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 10_000.0).abs() < 600.0, "counts {counts:?}");
        }
    }

    #[test]
    fn unit_floats_cover_unit_interval() {
        let mut rng = StdRng::seed_from_u64(2);
        let mean: f64 = (0..100_000).map(|_| rng.gen::<f64>()).sum::<f64>() / 100_000.0;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn uniform_distribution_matches_gen_range_semantics() {
        let mut rng = StdRng::seed_from_u64(3);
        let u = Uniform::new(-2.0f32, 2.0);
        for _ in 0..1000 {
            let v = u.sample(&mut rng);
            assert!((-2.0..2.0).contains(&v));
        }
    }

    #[test]
    fn weighted_index_prefers_heavy_weights() {
        let mut rng = StdRng::seed_from_u64(4);
        let w = WeightedIndex::new([8.0f64, 1.0, 1.0]).unwrap();
        let hits = (0..10_000).filter(|_| w.sample(&mut rng) == 0).count();
        assert!((7_500..8_500).contains(&hits), "hits {hits}");
        assert!(WeightedIndex::new(std::iter::empty::<f64>()).is_err());
        assert!(WeightedIndex::new([0.0f64, 0.0]).is_err());
        assert!(WeightedIndex::new([-1.0f64, 2.0]).is_err());
    }

    #[test]
    fn zero_weight_entries_never_sampled() {
        let mut rng = StdRng::seed_from_u64(5);
        let w = WeightedIndex::new([1.0f64, 0.0, 1.0]).unwrap();
        for _ in 0..5_000 {
            assert_ne!(w.sample(&mut rng), 1);
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(6);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits {hits}");
    }
}
