//! Facade crate re-exporting the whole Megatron PTD-P reproduction workspace.
//!
//! This workspace reproduces "Efficient Large-Scale Language Model Training
//! on GPU Clusters Using Megatron-LM" (Narayanan et al., SC '21). See
//! `README.md` for an overview, `DESIGN.md` for the system inventory, and
//! `EXPERIMENTS.md` for paper-vs-measured results.
//!
//! The sub-crates (each re-exported here as a module):
//!
//! - [`sim`]: deterministic discrete-event simulation kernel.
//! - [`cluster`]: GPU/node/cluster hardware substrate with a roofline
//!   compute-time model.
//! - [`collective`]: transport-agnostic ring/hierarchical collective step
//!   programs — the single definition both the real runtime and the
//!   simulator execute.
//! - [`net`]: network topology and collective algorithms over simulated
//!   NVLink / InfiniBand links (lowers [`collective`] programs onto
//!   discrete-event tasks).
//! - [`model`]: GPT model descriptions — parameter counts (paper Eq. 2),
//!   FLOPs (Eq. 3), per-layer op lists, memory model.
//! - [`parallel`]: PTD-P `(p, t, d)` configurations, rank mapping,
//!   analytical performance models (§3), and the configuration heuristics.
//! - [`schedule`]: pipeline schedules — GPipe, 1F1B, interleaved 1F1B.
//! - [`data`]: synthetic corpus generation, document packing, sharded
//!   data loading.
//! - [`core`]: end-to-end training-iteration simulation producing the
//!   paper's reported metrics.
//! - [`zero`]: ZeRO-3 baseline cost simulator (§5.2).
//! - [`tensor`]: real CPU tensor engine with hand-written backward passes.
//! - [`dist`]: thread-per-GPU distributed runtime running real tensor /
//!   pipeline / data parallel training, durable sharded checkpoints, and
//!   the auto-recovery supervisor.
//! - [`fault`]: fault injection plans, straggler detection, and the
//!   Young/Daly goodput model with its empirical cross-check.
//! - [`serve`]: tensor-parallel autoregressive inference — KV-cached
//!   decoding over the real runtime with continuous batching, seeded
//!   Poisson traffic, and a discrete-event scheduler mirror.
//! - [`telemetry`]: per-rank span tracing, metrics, shared Chrome-trace
//!   export, and the cross-rank critical-path / time-attribution analyzer.

pub use megatron_cluster as cluster;
pub use megatron_collective as collective;
pub use megatron_core as core;
pub use megatron_data as data;
pub use megatron_dist as dist;
pub use megatron_fault as fault;
pub use megatron_model as model;
pub use megatron_net as net;
pub use megatron_parallel as parallel;
pub use megatron_schedule as schedule;
pub use megatron_serve as serve;
pub use megatron_sim as sim;
pub use megatron_telemetry as telemetry;
pub use megatron_tensor as tensor;
pub use megatron_zero as zero;
