//! Real PTD-P training on CPU threads: train a tiny GPT with
//! pipeline + tensor + data parallelism (8 threads) and verify against
//! serial single-thread training on the same data.
//!
//! This exercises the actual algorithms of the paper — column/row-parallel
//! GEMMs with the f/g conjugate operators, the interleaved 1F1B schedule,
//! gradient averaging — not the performance simulator.
//!
//! Run with: `cargo run --release --example train_ptdp`

use megatron_repro::dist::{PtdpSpec, PtdpTrainer};
use megatron_repro::schedule::ScheduleKind;
use megatron_repro::tensor::gpt::{GptModel, TinyGptConfig};
use megatron_repro::tensor::Adam;
use rand::{Rng, SeedableRng};

fn main() {
    let cfg = TinyGptConfig {
        vocab: 64,
        seq: 16,
        hidden: 32,
        heads: 4,
        layers: 4,
    };
    let mut rng = rand::rngs::StdRng::seed_from_u64(42);
    let master = GptModel::new(cfg, &mut rng);

    // Memorization task: one fixed batch, repeated — loss must collapse.
    let batch = 8;
    let iterations = 30;
    let tokens: Vec<usize> = (0..batch * cfg.seq)
        .map(|_| rng.gen_range(0..cfg.vocab))
        .collect();
    let targets: Vec<usize> = tokens
        .iter()
        .enumerate()
        .map(|(i, &t)| if i % cfg.seq == 0 { t } else { tokens[i - 1] })
        .collect();
    let data: Vec<(Vec<usize>, Vec<usize>)> = (0..iterations)
        .map(|_| (tokens.clone(), targets.clone()))
        .collect();

    // Serial reference.
    let mut serial = master.clone();
    let mut adam = Adam::new(0.02);
    let mut serial_losses = Vec::new();
    for (tokens, targets) in &data {
        serial.zero_grads();
        serial_losses.push(serial.loss_and_grad(tokens, targets, batch));
        let mut pairs = serial.param_grad_pairs();
        adam.step(&mut pairs);
    }

    // PTD-P: p=2 pipeline stages (interleaved, v=2), t=2 tensor ranks,
    // d=2 data replicas → 8 threads, microbatches of 2 samples.
    let spec = PtdpSpec {
        chunks: 2,
        microbatch: 2,
        schedule: ScheduleKind::Interleaved { chunks: 2 },
        lr: 0.02,
        ..PtdpSpec::new(2, 2, 2)
    };
    println!(
        "training {} params over {} threads (p={}, t={}, d={}, v={}, interleaved 1F1B)",
        {
            let mut m = master.clone();
            m.param_count()
        },
        spec.world(),
        spec.pipeline,
        spec.tensor,
        spec.data,
        spec.chunks
    );
    let log = PtdpTrainer::new(master, spec).train(&data);

    println!("\niter   PTD-P loss   serial loss   |diff|");
    for (i, (p, s)) in log.losses.iter().zip(&serial_losses).enumerate() {
        if i % 5 == 0 || i == iterations - 1 {
            println!("{i:>4}   {p:>9.4}   {s:>10.4}   {:.2e}", (p - s).abs());
        }
    }
    let max_diff = log
        .losses
        .iter()
        .zip(&serial_losses)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f32, f32::max);
    println!("\nmax loss deviation from serial training: {max_diff:.2e}");
    println!(
        "loss fell {:.3} -> {:.3} (memorizing the copy task)",
        log.losses[0],
        log.losses[iterations - 1]
    );
    // Per-step f32 rounding differences compound through Adam over 30
    // steps; the trajectories stay close but not bit-equal.
    assert!(max_diff < 0.2, "PTD-P must track serial training");
    assert!(log.losses[iterations - 1] < log.losses[0] * 0.5);
    println!("PTD-P training matches serial training and the loss collapses ✓");
}
