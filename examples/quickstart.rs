//! Quickstart: simulate one training iteration of GPT-3 175B on a
//! Selene-like cluster with the paper's PTD-P configuration, and print the
//! headline metrics Table 1/2 report.
//!
//! Run with: `cargo run --release --example quickstart`

use megatron_repro::cluster::ClusterSpec;
use megatron_repro::core::TrainingRun;
use megatron_repro::model::zoo;
use megatron_repro::parallel::ParallelConfig;

fn main() {
    // GPT-3: 96 layers, hidden 12288, 96 heads (174.6B parameters).
    let model = zoo::gpt3_175b();
    println!(
        "model: {} — {:.1}B parameters, {:.1} EFLOPs per iteration at B=1536",
        model.name,
        model.params_eq2() / 1e9,
        model.flops_per_iteration_eq3(1536) / 1e18
    );

    // The paper's Table 2 PTD-P setup: t=8 (one DGX node), p=12, d=8 on
    // 768 A100 GPUs, batch 1536, microbatch 1.
    let cluster = ClusterSpec::selene(768);
    let parallel = ParallelConfig::new(12, 8, 8, 1, 1536);
    let run = TrainingRun::ptdp(model.clone(), cluster, parallel);

    let report = run.simulate().expect("valid configuration");
    println!("\none training iteration on 768 A100s, (t,p,d) = (8,12,8):");
    println!("  iteration time        {:.2} s", report.iteration_time);
    println!(
        "  per-GPU throughput    {:.0} teraFLOP/s ({:.0}% of peak; paper: 149)",
        report.tflops_per_gpu, report.pct_of_peak
    );
    println!(
        "  aggregate             {:.1} petaFLOP/s",
        report.aggregate_pflops
    );
    println!(
        "  pipeline bubble       {:.1}% analytical, {:.1}% measured idle",
        100.0 * report.analytical_bubble_fraction,
        100.0 * report.measured_idle_fraction
    );
    println!(
        "  memory per GPU        {} GiB of 80 GiB",
        report.memory_bytes_per_gpu >> 30
    );
    println!(
        "  comm per GPU/iter     {:.1} GB pipeline p2p, {:.1} GB tensor AR, {:.1} GB data AR",
        report.comm.pipeline_p2p_bytes_per_gpu / 1e9,
        report.comm.tensor_ar_bytes_per_gpu / 1e9,
        report.comm.data_parallel_bytes_per_gpu / 1e9
    );

    // Eq. 4 training-time estimate for GPT-3's 300B tokens.
    let days = model.training_time_eq4(300e9, report.n_gpus as f64, report.tflops_per_gpu * 1e12)
        / 86400.0;
    println!("\nestimated end-to-end training (300B tokens): {days:.0} days (paper: 43)");
}
