//! Visualize the three pipeline schedules (the paper's Figures 3 and 4) as
//! ASCII Gantt charts, with measured vs analytical bubble fractions, plus a
//! priced timeline for a real model configuration.
//!
//! Digits = forward passes (microbatch id mod 10); letters a-j = backward
//! passes; dots = idle (the pipeline bubble).
//!
//! Run with: `cargo run --release --example pipeline_gantt`

use megatron_repro::cluster::ClusterSpec;
use megatron_repro::core::TrainingRun;
use megatron_repro::model::zoo;
use megatron_repro::parallel::ParallelConfig;
use megatron_repro::schedule::{render_replay, ScheduleKind};

fn main() {
    let (p, m) = (4, 8);
    println!("p = {p} pipeline stages, m = {m} microbatches, t_b = 2·t_f\n");

    for (label, kind) in [
        (
            "GPipe — all-forward then all-backward (Figure 3)",
            ScheduleKind::GPipe,
        ),
        (
            "1F1B / PipeDream-Flush (Figure 4, top)",
            ScheduleKind::OneFOneB,
        ),
        (
            "Interleaved 1F1B with v = 2 chunks (Figure 4, bottom)",
            ScheduleKind::Interleaved { chunks: 2 },
        ),
    ] {
        let sched = kind.build(p, m);
        let replay = sched.replay(1.0, 2.0).expect("valid schedule");
        println!("{label}");
        println!(
            "  bubble: measured {:.4} | analytical (p-1)/(v·m) = {:.4} | peak stash: {:?} chunks",
            replay.bubble_fraction,
            sched.analytical_bubble_fraction(),
            replay.peak_in_flight
        );
        print!("{}", render_replay(&replay, p, 100));
        println!();
    }

    // A priced timeline: the 162.2B model at (t,p) = (8,8) on 64 GPUs.
    let model = zoo::gpt_162b();
    let run = TrainingRun::ptdp(
        model,
        ClusterSpec::selene(64),
        ParallelConfig::new(8, 8, 1, 1, 16),
    );
    println!("GPT 162.2B, (t,p,d) = (8,8,1), batch 16 — priced stage times:");
    print!("{}", run.ideal_gantt(100).expect("valid run"));
}
