//! Train a tiny GPT on a synthetic Markov corpus under PTD-P and watch the
//! loss approach the source's entropy floor — evidence that the distributed
//! runtime performs *real* learning, not just matching arithmetic.
//!
//! Run with: `cargo run --release --example learn_markov`

use megatron_repro::data::{MarkovCorpus, ShardedLoader};
use megatron_repro::dist::{PtdpSpec, PtdpTrainer};
use megatron_repro::tensor::gpt::{GptModel, TinyGptConfig};
use rand::SeedableRng;

fn main() {
    let cfg = TinyGptConfig {
        vocab: 32,
        seq: 16,
        hidden: 32,
        heads: 4,
        layers: 2,
    };
    // A corpus where each token has only 2 likely successors: entropy floor
    // far below the ln(32) ≈ 3.47 of random guessing.
    let mut corpus = MarkovCorpus::new(cfg.vocab, 2, 1234);
    let floor = corpus.conditional_entropy() as f32;
    println!(
        "Markov corpus: V={}, branching 2, conditional entropy {:.3} nats (ln V = {:.3})",
        cfg.vocab,
        floor,
        (cfg.vocab as f32).ln()
    );

    let batch = 16;
    let iterations = 120;
    let mut loader = ShardedLoader::from_corpus(&mut corpus, batch, cfg.seq, iterations);
    let data: Vec<(Vec<usize>, Vec<usize>)> =
        std::iter::from_fn(|| loader.next_global().map(|b| (b.tokens, b.targets))).collect();

    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let master = GptModel::new(cfg, &mut rng);
    let mut spec = PtdpSpec::new(2, 2, 2); // 8 threads
    spec.microbatch = 2;
    spec.lr = 0.01;

    println!(
        "training on {} iterations of batch {batch} with (p,t,d) = (2,2,2)...\n",
        data.len()
    );
    let log = PtdpTrainer::new(master, spec).train(&data);

    println!("iter   loss    (floor {floor:.3})");
    for (i, l) in log.losses.iter().enumerate() {
        if i % 20 == 0 || i + 1 == log.losses.len() {
            let bar = "#".repeat((l * 12.0) as usize);
            println!("{i:>4}   {l:.3}   {bar}");
        }
    }
    let first = log.losses[0];
    let last = *log.losses.last().unwrap();
    println!(
        "\nloss {first:.3} -> {last:.3}; gap to entropy floor: {:.3} nats",
        last - floor
    );
    assert!(
        last < first * 0.75,
        "model should learn the Markov structure"
    );
    assert!(
        last > floor - 0.05,
        "no model can beat the source entropy ({floor:.3}); got {last:.3}"
    );
    println!("learned the transition structure without beating the entropy floor ✓");
}
