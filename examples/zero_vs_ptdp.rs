//! The paper's §5.2 comparison as a runnable scenario: scale GPT-3 175B
//! from 384 to 1536 GPUs at fixed global batch size under PTD-P and under
//! ZeRO-3, and watch the curves diverge (Figure 10).
//!
//! Run with: `cargo run --release --example zero_vs_ptdp`

use megatron_repro::cluster::ClusterSpec;
use megatron_repro::core::TrainingRun;
use megatron_repro::model::zoo;
use megatron_repro::parallel::ParallelConfig;
use megatron_repro::zero::ZeroRun;

fn main() {
    let model = zoo::gpt3_175b();
    let batch = 1536u64;
    println!(
        "{} at fixed global batch {batch}: per-GPU throughput vs cluster size\n",
        model.name
    );
    println!("GPUs   PTD-P TF/s   ZeRO-3 TF/s   PTD-P advantage");

    for (gpus, zero_b) in [(384usize, 4u64), (768, 2), (1536, 1)] {
        let cluster = ClusterSpec::selene(gpus);

        // PTD-P: model-parallel size 96 (t=8, p=12) as in Table 2.
        let d = gpus as u64 / 96;
        let pc = ParallelConfig::new(12, 8, d, 1, batch);
        let ptdp = TrainingRun::ptdp(model.clone(), cluster.clone(), pc)
            .simulate()
            .expect("PTD-P config valid");

        // ZeRO-3: no model parallelism; microbatch shrinks as GPUs grow so
        // the fixed batch still divides (the paper's setup).
        let zero = ZeroRun::new(model.clone(), cluster, batch, zero_b).simulate();

        println!(
            "{gpus:>4}   {:>10.0}   {:>11.0}   {:>+6.0}%",
            ptdp.tflops_per_gpu,
            zero.tflops_per_gpu,
            100.0 * (ptdp.tflops_per_gpu / zero.tflops_per_gpu - 1.0)
        );
    }

    println!(
        "\npaper: PTD-P wins by ~6% at 384 GPUs and ~70%+ once the GPU count doubles,\n\
         because ZeRO-3's parameter gathers keep per-rank communication constant while\n\
         per-rank compute shrinks (§5.2)."
    );
}
