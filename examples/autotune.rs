//! Configuration auto-tuning: compare the paper's §3 heuristics against an
//! exhaustive sweep of all valid (p, t, d) configurations for a given model
//! and GPU budget, simulating each one.
//!
//! Run with: `cargo run --release --example autotune`

use megatron_repro::cluster::ClusterSpec;
use megatron_repro::core::TrainingRun;
use megatron_repro::model::zoo;
use megatron_repro::parallel::{heuristics, ParallelConfig};

fn main() {
    let model = zoo::gpt_5p9b();
    let n_gpus = 64;
    let batch = 256;
    let cluster = ClusterSpec::selene(n_gpus);
    println!(
        "sweeping all valid configurations: {} on {n_gpus} GPUs, batch {batch}\n",
        model.name
    );

    let mut results: Vec<(ParallelConfig, f64)> = Vec::new();
    for base in heuristics::enumerate_configs(&model, &cluster, batch as u64) {
        for b in [1u64, 2, 4, 8] {
            if !(batch as u64 / base.data).is_multiple_of(b) {
                continue;
            }
            let pc = ParallelConfig::new(base.pipeline, base.tensor, base.data, b, batch as u64);
            let run = TrainingRun::ptdp(model.clone(), cluster.clone(), pc);
            if let Ok(report) = run.simulate() {
                results.push((pc, report.tflops_per_gpu));
            }
        }
    }
    results.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());

    println!("top configurations (of {} valid):", results.len());
    println!("  (t, p, d)  b    TF/s per GPU");
    for (pc, tf) in results.iter().take(8) {
        println!(
            "  ({}, {:>2}, {:>2})  {}    {tf:.0}",
            pc.tensor, pc.pipeline, pc.data, pc.microbatch
        );
    }
    println!("  ...");
    for (pc, tf) in results.iter().rev().take(3).rev() {
        println!(
            "  ({}, {:>2}, {:>2})  {}    {tf:.0}",
            pc.tensor, pc.pipeline, pc.data, pc.microbatch
        );
    }

    let best = &results[0];
    let heuristic = heuristics::suggest_config(&model, &cluster, batch as u64)
        .expect("model fits on this cluster");
    let heuristic_tf = TrainingRun::ptdp(model.clone(), cluster.clone(), heuristic)
        .simulate()
        .expect("heuristic config simulates")
        .tflops_per_gpu;

    println!(
        "\nbrute-force best:  (t,p,d,b) = ({}, {}, {}, {}) at {:.0} TF/s",
        best.0.tensor, best.0.pipeline, best.0.data, best.0.microbatch, best.1
    );
    println!(
        "paper heuristics:  (t,p,d,b) = ({}, {}, {}, {}) at {:.0} TF/s ({:.0}% of best)",
        heuristic.tensor,
        heuristic.pipeline,
        heuristic.data,
        heuristic.microbatch,
        heuristic_tf,
        100.0 * heuristic_tf / best.1
    );
    println!(
        "worst valid configuration: {:.0} TF/s — {:.1}x spread across the space \
         (the paper's 'sub-optimal combinations can be 2x worse')",
        results.last().unwrap().1,
        best.1 / results.last().unwrap().1
    );
}
