//! Randomized property tests on the core invariants the paper's analysis
//! rests on. Each property draws its parameters from a seeded RNG over a
//! fixed number of cases, so failures are exactly reproducible.

use megatron_repro::cluster::ClusterSpec;
use megatron_repro::model::{memory, GptConfig};
use megatron_repro::net::{analytical, Network};
use megatron_repro::parallel::RankMapper;
use megatron_repro::schedule::ScheduleKind;
use megatron_repro::sim::{time_to_secs, DagSim};
use megatron_repro::tensor::gemm;
use megatron_repro::tensor::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: u64 = 64;

/// Run `body` for `CASES` deterministic cases, each with its own seeded RNG.
fn for_cases(name: &str, body: impl Fn(&mut StdRng)) {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x5eed_0000 + case);
        let _ = name; // case seed is the reproducer; name aids debugging
        body(&mut rng);
    }
}

/// Every generated schedule is structurally valid and deadlock-free, and
/// measures exactly the analytical bubble fraction.
#[test]
fn schedules_valid_and_bubble_exact() {
    for_cases("schedules_valid_and_bubble_exact", |rng| {
        let p = rng.gen_range(1usize..=8);
        let m = p * rng.gen_range(1usize..=4); // interleaving needs m % p == 0
        let v = rng.gen_range(1usize..=3);
        let tf = rng.gen_range(0.5f64..3.0);
        let tb = rng.gen_range(0.5f64..4.0);
        for kind in [
            ScheduleKind::GPipe,
            ScheduleKind::OneFOneB,
            ScheduleKind::Interleaved { chunks: v },
        ] {
            let sched = kind.build(p, m);
            let replay = sched.validate().expect("valid schedule");
            assert!(replay.bubble_fraction >= -1e-9);
            let timed = sched.replay(tf, tb).unwrap();
            let want = sched.analytical_bubble_fraction();
            assert!(
                (timed.bubble_fraction - want).abs() < 1e-6,
                "{kind:?} (p={p}, m={m}): {} vs {want}",
                timed.bubble_fraction
            );
        }
    });
}

/// 1F1B never stashes more than p microbatches; GPipe stashes exactly m on
/// the first device.
#[test]
fn activation_stash_bounds() {
    for_cases("activation_stash_bounds", |rng| {
        let p = rng.gen_range(1usize..=8);
        let m = p * rng.gen_range(1usize..=6);
        let f = ScheduleKind::OneFOneB.build(p, m).replay(1.0, 2.0).unwrap();
        assert!(f.peak_in_flight.iter().all(|&x| x <= p));
        let g = ScheduleKind::GPipe.build(p, m).replay(1.0, 2.0).unwrap();
        assert_eq!(g.peak_in_flight[0], m);
    });
}

/// Rank mapping is a bijection and groups partition the world.
#[test]
fn rank_mapping_bijective() {
    for_cases("rank_mapping_bijective", |rng| {
        let p = rng.gen_range(1u64..=6);
        let t = rng.gen_range(1u64..=6);
        let d = rng.gen_range(1u64..=6);
        let mapper = RankMapper::new(p, t, d);
        let mut seen = vec![false; mapper.n() as usize];
        for r in 0..mapper.n() {
            let c = mapper.coord(r);
            assert_eq!(mapper.rank(c), r);
            assert!(!seen[r as usize]);
            seen[r as usize] = true;
        }
        // Tensor groups partition.
        let mut count = vec![0u32; mapper.n() as usize];
        for pi in 0..p {
            for di in 0..d {
                for r in mapper.tensor_group(pi, di) {
                    count[r] += 1;
                }
            }
        }
        assert!(count.iter().all(|&c| c == 1));
    });
}

/// Parameter-count closed form (Eq. 2) tracks exact enumeration within 0.1%
/// for arbitrary architectures.
#[test]
fn eq2_tracks_exact() {
    for_cases("eq2_tracks_exact", |rng| {
        let l = rng.gen_range(1u64..=128);
        let heads = 1u64 << rng.gen_range(0u32..=5);
        let h = rng.gen_range(1u64..=40) * heads * 8; // h divisible by heads
        let cfg = GptConfig::paper("prop", l, h, heads);
        let exact = cfg.params_exact() as f64;
        let eq2 = cfg.params_eq2();
        assert!(
            (exact - eq2).abs() / exact < 1e-3,
            "l={l} h={h}: {exact} vs {eq2}"
        );
    });
}

/// FLOPs formula: Eq. 3 equals the appendix breakdown with recomputation,
/// for arbitrary shapes and batch sizes.
#[test]
fn eq3_equals_appendix() {
    for_cases("eq3_equals_appendix", |rng| {
        let l = rng.gen_range(1u64..=64);
        let h = rng.gen_range(1u64..=24) * 128;
        let batch = rng.gen_range(1u64..=4096);
        let cfg = GptConfig::paper("prop", l, h, 8);
        let a = cfg.flops_per_iteration_eq3(batch);
        let b = cfg.flops_per_iteration(batch, true);
        assert!((a - b).abs() / a < 1e-12);
    });
}

/// GEMM agrees with the naive triple loop on arbitrary shapes.
#[test]
fn gemm_matches_naive() {
    for_cases("gemm_matches_naive", |rng| {
        let m = rng.gen_range(1usize..=12);
        let k = rng.gen_range(1usize..=12);
        let n = rng.gen_range(1usize..=12);
        let a = Matrix::randn(m, k, 1.0, rng);
        let b = Matrix::randn(k, n, 1.0, rng);
        let fast = gemm::matmul(&a, &b);
        let slow = gemm::matmul_naive(&a, &b);
        assert!(fast.max_abs_diff(&slow) < 1e-4);
    });
}

/// Simulated ring all-reduce time matches the analytical model for
/// arbitrary intra-node groups and sizes.
#[test]
fn simulated_all_reduce_matches_analytical() {
    for_cases("simulated_all_reduce_matches_analytical", |rng| {
        let group_size = rng.gen_range(2usize..=8);
        let mib = rng.gen_range(1u64..=64);
        let cluster = ClusterSpec::selene(8);
        let ranks: Vec<usize> = (0..group_size).collect();
        let bytes = mib * 1024 * 1024;
        let mut sim = DagSim::new();
        let net = Network::new(&mut sim, cluster.clone());
        net.ring_all_reduce(&mut sim, &ranks, bytes, &[], 0);
        let got = time_to_secs(sim.run().unwrap().makespan);
        let want = analytical::ring_all_reduce_time(&cluster, &ranks, bytes as f64);
        assert!((got - want).abs() / want < 0.05, "{got} vs {want}");
    });
}

/// The ring volume factor 2(r−1)/r is monotone and bounded by 2.
#[test]
fn ring_volume_factor() {
    for_cases("ring_volume_factor", |rng| {
        let r = rng.gen_range(1usize..=4096);
        let v = analytical::ring_all_reduce_volume(r, 1.0);
        assert!((0.0..2.0).contains(&v));
        if r > 1 {
            assert!(v > analytical::ring_all_reduce_volume(r - 1, 1.0) - 1e-12);
        }
    });
}

/// Memory model invariants: sharding monotonically reduces per-GPU state;
/// recomputation never stashes more than full caching; the §3.5 optimal
/// checkpoint count minimizes the closed-form footprint.
#[test]
fn memory_model_invariants() {
    for_cases("memory_model_invariants", |rng| {
        let l_per_stage = rng.gen_range(1u64..=8);
        let p = 1u64 << rng.gen_range(0u32..=3);
        let t = 1u64 << rng.gen_range(0u32..=3);
        let b = rng.gen_range(1u64..=8);
        let heads = t.max(4);
        let cfg = GptConfig::paper("prop", l_per_stage * p, heads * 64, heads);
        // More pipeline or tensor parallelism → less state per GPU.
        let state = memory::model_state_bytes_per_gpu(&cfg, p, t);
        if p > 1 {
            assert!(state <= memory::model_state_bytes_per_gpu(&cfg, p / 2, t));
        }
        if t > 1 {
            assert!(state <= memory::model_state_bytes_per_gpu(&cfg, p, t / 2));
        }
        // Recompute stash ≤ full stash.
        assert!(
            memory::activation_bytes_recompute(&cfg, b)
                <= memory::activation_bytes_full(&cfg, b, t)
        );
        // Optimal checkpoint count minimizes the §3.5 expression.
        let (ai, am, ll) = (1.0e6, 17.0e6, l_per_stage as f64 * 4.0);
        let c_star = memory::optimal_checkpoints(ai, am, ll);
        let best = memory::checkpointed_stage_bytes(ai, am, ll, c_star);
        for c in 1..=(ll as u64) {
            assert!(memory::checkpointed_stage_bytes(ai, am, ll, c as f64) >= best - 1e-3);
        }
    });
}

/// Analytical §3 identities: interleaving divides the bubble by v; the
/// scatter/gather wire volume is exactly 1/t of the plain transfer.
#[test]
fn analysis_identities() {
    for_cases("analysis_identities", |rng| {
        use megatron_repro::parallel::analysis;
        let p = rng.gen_range(2u64..=64);
        let m = p * rng.gen_range(1u64..=8);
        let v = rng.gen_range(1u64..=4);
        let t = rng.gen_range(1u64..=8);
        let b = rng.gen_range(1u64..=8);
        let base = analysis::bubble_fraction(p, m, 1);
        let inter = analysis::bubble_fraction(p, m, v);
        assert!((inter - base / v as f64).abs() < 1e-12);
        let cfg = GptConfig::paper("prop", 2, 1024, 8);
        let plain = analysis::pipeline_p2p_bytes(&cfg, b);
        let sg = analysis::pipeline_p2p_bytes_scatter_gather(&cfg, b, t);
        assert!(sg >= plain / t && sg <= plain / t + t);
    });
}

/// DAG simulation is work-conserving: makespan is at least the busiest
/// resource's total work and at most the sum of all task durations.
#[test]
fn dag_sim_bounds() {
    for_cases("dag_sim_bounds", |rng| {
        let n_tasks = rng.gen_range(1usize..=60);
        let n_res = rng.gen_range(1usize..=6);
        let mut sim = DagSim::new();
        let resources: Vec<_> = (0..n_res)
            .map(|i| sim.add_resource(format!("r{i}")))
            .collect();
        let mut tasks = Vec::new();
        let mut total: u64 = 0;
        for i in 0..n_tasks {
            let r = resources[rng.gen_range(0..n_res)];
            let dur = rng.gen_range(1u64..100);
            total += dur;
            // Depend on up to 2 random earlier tasks (always acyclic).
            let mut deps = Vec::new();
            for _ in 0..rng.gen_range(0..3usize) {
                if i > 0 {
                    deps.push(tasks[rng.gen_range(0..i)]);
                }
            }
            tasks.push(sim.add_task(r, dur, &deps, 0));
        }
        let result = sim.run().unwrap();
        let busiest = result.resources.iter().map(|r| r.busy).max().unwrap();
        assert!(result.makespan >= busiest);
        assert!(result.makespan <= total);
        assert_eq!(result.spans.len(), n_tasks);
    });
}
