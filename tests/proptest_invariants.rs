//! Randomized property tests on the core invariants the paper's analysis
//! rests on. Each property draws its parameters from a seeded RNG over a
//! fixed number of cases, so failures are exactly reproducible.

use megatron_repro::cluster::ClusterSpec;
use megatron_repro::model::{memory, GptConfig};
use megatron_repro::net::{analytical, Network};
use megatron_repro::parallel::RankMapper;
use megatron_repro::schedule::ScheduleKind;
use megatron_repro::sim::{time_to_secs, DagSim};
use megatron_repro::tensor::gemm;
use megatron_repro::tensor::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: u64 = 64;

/// Run `body` for `CASES` deterministic cases, each with its own seeded RNG.
fn for_cases(name: &str, body: impl Fn(&mut StdRng)) {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x5eed_0000 + case);
        let _ = name; // case seed is the reproducer; name aids debugging
        body(&mut rng);
    }
}

/// Every generated schedule is structurally valid and deadlock-free, and
/// measures exactly the analytical bubble fraction.
#[test]
fn schedules_valid_and_bubble_exact() {
    for_cases("schedules_valid_and_bubble_exact", |rng| {
        let p = rng.gen_range(1usize..=8);
        let m = p * rng.gen_range(1usize..=4); // interleaving needs m % p == 0
        let v = rng.gen_range(1usize..=3);
        let tf = rng.gen_range(0.5f64..3.0);
        let tb = rng.gen_range(0.5f64..4.0);
        for kind in [
            ScheduleKind::GPipe,
            ScheduleKind::OneFOneB,
            ScheduleKind::Interleaved { chunks: v },
        ] {
            let sched = kind.build(p, m);
            let replay = sched.validate().expect("valid schedule");
            assert!(replay.bubble_fraction >= -1e-9);
            let timed = sched.replay(tf, tb).unwrap();
            let want = sched.analytical_bubble_fraction();
            assert!(
                (timed.bubble_fraction - want).abs() < 1e-6,
                "{kind:?} (p={p}, m={m}): {} vs {want}",
                timed.bubble_fraction
            );
        }
    });
}

/// 1F1B never stashes more than p microbatches; GPipe stashes exactly m on
/// the first device.
#[test]
fn activation_stash_bounds() {
    for_cases("activation_stash_bounds", |rng| {
        let p = rng.gen_range(1usize..=8);
        let m = p * rng.gen_range(1usize..=6);
        let f = ScheduleKind::OneFOneB.build(p, m).replay(1.0, 2.0).unwrap();
        assert!(f.peak_in_flight.iter().all(|&x| x <= p));
        let g = ScheduleKind::GPipe.build(p, m).replay(1.0, 2.0).unwrap();
        assert_eq!(g.peak_in_flight[0], m);
    });
}

/// Rank mapping is a bijection and groups partition the world.
#[test]
fn rank_mapping_bijective() {
    for_cases("rank_mapping_bijective", |rng| {
        let p = rng.gen_range(1u64..=6);
        let t = rng.gen_range(1u64..=6);
        let d = rng.gen_range(1u64..=6);
        let mapper = RankMapper::new(p, t, d);
        let mut seen = vec![false; mapper.n() as usize];
        for r in 0..mapper.n() {
            let c = mapper.coord(r);
            assert_eq!(mapper.rank(c), r);
            assert!(!seen[r as usize]);
            seen[r as usize] = true;
        }
        // Tensor groups partition.
        let mut count = vec![0u32; mapper.n() as usize];
        for pi in 0..p {
            for di in 0..d {
                for r in mapper.tensor_group(pi, di) {
                    count[r] += 1;
                }
            }
        }
        assert!(count.iter().all(|&c| c == 1));
    });
}

/// Parameter-count closed form (Eq. 2) tracks exact enumeration within 0.1%
/// for arbitrary architectures.
#[test]
fn eq2_tracks_exact() {
    for_cases("eq2_tracks_exact", |rng| {
        let l = rng.gen_range(1u64..=128);
        let heads = 1u64 << rng.gen_range(0u32..=5);
        let h = rng.gen_range(1u64..=40) * heads * 8; // h divisible by heads
        let cfg = GptConfig::paper("prop", l, h, heads);
        let exact = cfg.params_exact() as f64;
        let eq2 = cfg.params_eq2();
        assert!(
            (exact - eq2).abs() / exact < 1e-3,
            "l={l} h={h}: {exact} vs {eq2}"
        );
    });
}

/// FLOPs formula: Eq. 3 equals the appendix breakdown with recomputation,
/// for arbitrary shapes and batch sizes.
#[test]
fn eq3_equals_appendix() {
    for_cases("eq3_equals_appendix", |rng| {
        let l = rng.gen_range(1u64..=64);
        let h = rng.gen_range(1u64..=24) * 128;
        let batch = rng.gen_range(1u64..=4096);
        let cfg = GptConfig::paper("prop", l, h, 8);
        let a = cfg.flops_per_iteration_eq3(batch);
        let b = cfg.flops_per_iteration(batch, true);
        assert!((a - b).abs() / a < 1e-12);
    });
}

/// GEMM agrees with the naive triple loop on arbitrary shapes.
#[test]
fn gemm_matches_naive() {
    for_cases("gemm_matches_naive", |rng| {
        let m = rng.gen_range(1usize..=12);
        let k = rng.gen_range(1usize..=12);
        let n = rng.gen_range(1usize..=12);
        let a = Matrix::randn(m, k, 1.0, rng);
        let b = Matrix::randn(k, n, 1.0, rng);
        let fast = gemm::matmul(&a, &b);
        let slow = gemm::matmul_naive(&a, &b);
        assert!(fast.max_abs_diff(&slow) < 1e-4);
    });
}

/// Simulated ring all-reduce time matches the analytical model for
/// arbitrary intra-node groups and sizes.
#[test]
fn simulated_all_reduce_matches_analytical() {
    for_cases("simulated_all_reduce_matches_analytical", |rng| {
        let group_size = rng.gen_range(2usize..=8);
        let mib = rng.gen_range(1u64..=64);
        let cluster = ClusterSpec::selene(8);
        let ranks: Vec<usize> = (0..group_size).collect();
        let bytes = mib * 1024 * 1024;
        let mut sim = DagSim::new();
        let net = Network::new(&mut sim, cluster.clone());
        net.ring_all_reduce(&mut sim, &ranks, bytes, &[], 0);
        let got = time_to_secs(sim.run().unwrap().makespan);
        let want = analytical::ring_all_reduce_time(&cluster, &ranks, bytes as f64);
        assert!((got - want).abs() / want < 0.05, "{got} vs {want}");
    });
}

/// The ring volume factor 2(r−1)/r is monotone and bounded by 2.
#[test]
fn ring_volume_factor() {
    for_cases("ring_volume_factor", |rng| {
        let r = rng.gen_range(1usize..=4096);
        let v = analytical::ring_all_reduce_volume(r, 1.0);
        assert!((0.0..2.0).contains(&v));
        if r > 1 {
            assert!(v > analytical::ring_all_reduce_volume(r - 1, 1.0) - 1e-12);
        }
    });
}

/// Memory model invariants: sharding monotonically reduces per-GPU state;
/// recomputation never stashes more than full caching; the §3.5 optimal
/// checkpoint count minimizes the closed-form footprint.
#[test]
fn memory_model_invariants() {
    for_cases("memory_model_invariants", |rng| {
        let l_per_stage = rng.gen_range(1u64..=8);
        let p = 1u64 << rng.gen_range(0u32..=3);
        let t = 1u64 << rng.gen_range(0u32..=3);
        let b = rng.gen_range(1u64..=8);
        let heads = t.max(4);
        let cfg = GptConfig::paper("prop", l_per_stage * p, heads * 64, heads);
        // More pipeline or tensor parallelism → less state per GPU.
        let state = memory::model_state_bytes_per_gpu(&cfg, p, t);
        if p > 1 {
            assert!(state <= memory::model_state_bytes_per_gpu(&cfg, p / 2, t));
        }
        if t > 1 {
            assert!(state <= memory::model_state_bytes_per_gpu(&cfg, p, t / 2));
        }
        // Recompute stash ≤ full stash.
        assert!(
            memory::activation_bytes_recompute(&cfg, b)
                <= memory::activation_bytes_full(&cfg, b, t)
        );
        // Optimal checkpoint count minimizes the §3.5 expression.
        let (ai, am, ll) = (1.0e6, 17.0e6, l_per_stage as f64 * 4.0);
        let c_star = memory::optimal_checkpoints(ai, am, ll);
        let best = memory::checkpointed_stage_bytes(ai, am, ll, c_star);
        for c in 1..=(ll as u64) {
            assert!(memory::checkpointed_stage_bytes(ai, am, ll, c as f64) >= best - 1e-3);
        }
    });
}

/// Analytical §3 identities: interleaving divides the bubble by v; the
/// scatter/gather wire volume is exactly 1/t of the plain transfer.
#[test]
fn analysis_identities() {
    for_cases("analysis_identities", |rng| {
        use megatron_repro::parallel::analysis;
        let p = rng.gen_range(2u64..=64);
        let m = p * rng.gen_range(1u64..=8);
        let v = rng.gen_range(1u64..=4);
        let t = rng.gen_range(1u64..=8);
        let b = rng.gen_range(1u64..=8);
        let base = analysis::bubble_fraction(p, m, 1);
        let inter = analysis::bubble_fraction(p, m, v);
        assert!((inter - base / v as f64).abs() < 1e-12);
        let cfg = GptConfig::paper("prop", 2, 1024, 8);
        let plain = analysis::pipeline_p2p_bytes(&cfg, b);
        let sg = analysis::pipeline_p2p_bytes_scatter_gather(&cfg, b, t);
        assert!(sg >= plain / t && sg <= plain / t + t);
    });
}

/// Elastic invariant: the canonical checkpoint layout round-trips across
/// every divisor (p, t, d) topology of worlds 4, 8, and 12 — restore a
/// source checkpoint into any target topology, re-save it there, restore
/// back at the source topology, and every thread's parameters and Adam
/// moments match the original bitwise. This is the property the elastic
/// supervisor's shrink/grow path rests on: resharding is pure slicing,
/// never arithmetic.
#[test]
fn canonical_restore_round_trips_across_topologies() {
    use megatron_repro::dist::{CheckpointStore, PtdpSpec, PtdpTrainer, RunControl};
    use megatron_repro::tensor::gpt::{GptModel, TinyGptConfig};
    use std::fs;
    use std::sync::Arc;

    let c = TinyGptConfig {
        vocab: 13,
        seq: 4,
        hidden: 8,
        heads: 4,
        layers: 2,
    };
    let mut rng = StdRng::seed_from_u64(0x5eed_e1a5);
    let master = GptModel::new(c, &mut rng);
    let batch = 12usize;
    let data: Vec<(Vec<usize>, Vec<usize>)> = (0..2)
        .map(|_| {
            let toks = (0..batch * c.seq)
                .map(|_| rng.gen_range(0..c.vocab))
                .collect();
            let tgts = (0..batch * c.seq)
                .map(|_| rng.gen_range(0..c.vocab))
                .collect();
            (toks, tgts)
        })
        .collect();

    // All (p, t, d) with p·t·d == world that the trainer accepts: t must
    // divide the head count, p must divide the layer count.
    let configs = |world: usize| -> Vec<(usize, usize, usize)> {
        let mut v = Vec::new();
        for p in 1..=world {
            if !world.is_multiple_of(p) || !c.layers.is_multiple_of(p) {
                continue;
            }
            for t in 1..=(world / p) {
                if !(world / p).is_multiple_of(t) || !c.heads.is_multiple_of(t) {
                    continue;
                }
                v.push((p, t, world / (p * t)));
            }
        }
        v
    };
    let targets: Vec<(usize, usize, usize)> =
        [4usize, 8, 12].iter().flat_map(|&w| configs(w)).collect();
    assert!(targets.len() >= 12, "divisor enumeration went wrong");

    for world in [4usize, 8, 12] {
        let source = PtdpSpec::new(2, 2, world / 4);
        let root =
            std::env::temp_dir().join(format!("mgprop-elastic-{world}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        let store = CheckpointStore::open(&root).unwrap();
        let out = PtdpTrainer::new(master.clone(), source).train_with(
            &data,
            RunControl {
                checkpoint_every: Some(2),
                durable: Some(Arc::clone(&store)),
                ..RunControl::default()
            },
        );
        assert!(out.error.is_none(), "{:?}", out.error);
        let original = store.load_latest(&source, c).unwrap();
        assert!(!original.cross_topology);

        for &(p, t, d) in &targets {
            let target = PtdpSpec {
                pipeline: p,
                tensor: t,
                data: d,
                ..source
            };
            let mid = store
                .load_latest(&target, c)
                .unwrap_or_else(|e| panic!("restore into ({p},{t},{d}) from world {world}: {e:?}"));
            assert_eq!(mid.snapshot.next_iter, 2);
            assert_eq!(mid.snapshot.threads.len(), p * t * d);

            // Round trip: re-save at the target topology, restore back at
            // the source topology, compare bitwise.
            let root2 = root.join(format!("rt-{p}-{t}-{d}"));
            let store2 = CheckpointStore::open(&root2).unwrap();
            for (&key, state) in &mid.snapshot.threads {
                store2.write_shard(&target, key, 2, state).unwrap();
            }
            store2
                .commit_generation(&target, c, 2, &mid.snapshot.threads)
                .unwrap();
            let back = store2.load_latest(&source, c).unwrap();
            assert_eq!(back.snapshot.next_iter, 2);
            for (key, want) in &original.snapshot.threads {
                let got = &back.snapshot.threads[key];
                assert_eq!(got.params, want.params, "params {key:?} via ({p},{t},{d})");
                assert_eq!(got.adam.t, want.adam.t, "adam.t {key:?} via ({p},{t},{d})");
                assert_eq!(got.adam.m, want.adam.m, "adam.m {key:?} via ({p},{t},{d})");
                assert_eq!(got.adam.v, want.adam.v, "adam.v {key:?} via ({p},{t},{d})");
            }
        }
        let _ = fs::remove_dir_all(&root);
    }
}

/// A ZeRO-sharded run never writes the canonical layout, so a
/// cross-topology restore must fail with a clean `CheckpointError` — not
/// panic, and not reshard per-replica optimizer fragments into garbage.
/// Same-topology restore keeps working.
#[test]
fn zero_sharded_checkpoint_fails_cross_topology_cleanly() {
    use megatron_repro::dist::{CheckpointStore, PtdpSpec, PtdpTrainer, RunControl};
    use megatron_repro::tensor::gpt::{GptModel, TinyGptConfig};
    use std::fs;
    use std::sync::Arc;

    let c = TinyGptConfig {
        vocab: 13,
        seq: 4,
        hidden: 8,
        heads: 4,
        layers: 2,
    };
    let mut rng = StdRng::seed_from_u64(0x5eed_02e0);
    let master = GptModel::new(c, &mut rng);
    let batch = 4usize;
    let data: Vec<(Vec<usize>, Vec<usize>)> = (0..2)
        .map(|_| {
            let toks = (0..batch * c.seq)
                .map(|_| rng.gen_range(0..c.vocab))
                .collect();
            let tgts = (0..batch * c.seq)
                .map(|_| rng.gen_range(0..c.vocab))
                .collect();
            (toks, tgts)
        })
        .collect();

    let source = PtdpSpec {
        shard_optimizer: true,
        ..PtdpSpec::new(2, 1, 2)
    };
    let root = std::env::temp_dir().join(format!("mgprop-zero-{}", std::process::id()));
    let _ = fs::remove_dir_all(&root);
    let store = CheckpointStore::open(&root).unwrap();
    let out = PtdpTrainer::new(master, source).train_with(
        &data,
        RunControl {
            checkpoint_every: Some(2),
            durable: Some(Arc::clone(&store)),
            ..RunControl::default()
        },
    );
    assert!(out.error.is_none(), "{:?}", out.error);

    // Same topology: fine.
    assert!(store.load_latest(&source, c).is_ok());
    // Any other divisor topology of worlds 4 and 8: clean error.
    for (p, t, d) in [(1, 1, 4), (1, 2, 2), (4, 1, 1), (2, 2, 2), (1, 4, 2)] {
        let target = PtdpSpec {
            pipeline: p,
            tensor: t,
            data: d,
            ..source
        };
        if (p, t, d) == (source.pipeline, source.tensor, source.data) {
            continue;
        }
        assert!(
            store.load_latest(&target, c).is_err(),
            "ZeRO restore into ({p},{t},{d}) must fail cleanly"
        );
    }
    let _ = fs::remove_dir_all(&root);
}

/// DAG simulation is work-conserving: makespan is at least the busiest
/// resource's total work and at most the sum of all task durations.
#[test]
fn dag_sim_bounds() {
    for_cases("dag_sim_bounds", |rng| {
        let n_tasks = rng.gen_range(1usize..=60);
        let n_res = rng.gen_range(1usize..=6);
        let mut sim = DagSim::new();
        let resources: Vec<_> = (0..n_res)
            .map(|i| sim.add_resource(format!("r{i}")))
            .collect();
        let mut tasks = Vec::new();
        let mut total: u64 = 0;
        for i in 0..n_tasks {
            let r = resources[rng.gen_range(0..n_res)];
            let dur = rng.gen_range(1u64..100);
            total += dur;
            // Depend on up to 2 random earlier tasks (always acyclic).
            let mut deps = Vec::new();
            for _ in 0..rng.gen_range(0..3usize) {
                if i > 0 {
                    deps.push(tasks[rng.gen_range(0..i)]);
                }
            }
            tasks.push(sim.add_task(r, dur, &deps, 0));
        }
        let result = sim.run().unwrap();
        let busiest = result.resources.iter().map(|r| r.busy).max().unwrap();
        assert!(result.makespan >= busiest);
        assert!(result.makespan <= total);
        assert_eq!(result.spans.len(), n_tasks);
    });
}

/// Histogram quantiles are monotone in `q`, `percentiles()` is ordered,
/// and every quantile lies within the recorded range's bucket bounds.
#[test]
fn histogram_quantiles_monotone() {
    use megatron_repro::telemetry::MetricsRegistry;
    for_cases("histogram_quantiles_monotone", |rng| {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("x");
        let n = rng.gen_range(1usize..=200);
        let mut max = 0.0f64;
        for _ in 0..n {
            // Span the bucket range: microseconds to minutes.
            let v = 10f64.powf(rng.gen_range(-6.0f64..2.0));
            max = max.max(v);
            h.record(v);
        }
        let mut prev = 0.0f64;
        for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            let x = h.quantile(q).expect("non-empty histogram");
            assert!(
                x >= prev - 1e-12,
                "quantile({q}) = {x} dropped below previous {prev}"
            );
            assert!(x.is_finite() && x >= 0.0);
            prev = x;
        }
        let (p50, p90, p99) = h.percentiles().expect("non-empty histogram");
        assert!(p50 <= p90 + 1e-12 && p90 <= p99 + 1e-12);
        // Log-bucket resolution: the top quantile can overshoot the true
        // max by at most one power-of-two bucket.
        assert!(h.quantile(1.0).unwrap() <= 2.0 * max + 1e-9);
    });
}

/// Process-mode `job.json` round-trip: a `JobSpec` survives
/// serialize→parse for every field, including extreme f32 learning
/// rates — NaNs with arbitrary payloads, subnormals, infinities, and
/// signed zeros. The wire form carries `lr` as raw bits (`lr_bits`)
/// precisely so these survive; the property compares bit patterns
/// (NaN != NaN would make a value comparison vacuous).
#[test]
fn job_spec_json_round_trips_extreme_floats() {
    use megatron_repro::dist::proc::JobSpec;
    use megatron_repro::dist::WireKind;
    use std::time::Duration;

    for_cases("job_spec_json_round_trips_extreme_floats", |rng| {
        let mut job = JobSpec::canonical(2, 2, 2);
        job.pipeline = rng.gen_range(1usize..=4);
        job.tensor = rng.gen_range(1usize..=4);
        job.data = rng.gen_range(1usize..=4);
        job.chunks = rng.gen_range(1usize..=3);
        job.microbatch = rng.gen_range(1usize..=4);
        job.schedule = match rng.gen_range(0u32..3) {
            0 => ScheduleKind::GPipe,
            1 => ScheduleKind::OneFOneB,
            _ => ScheduleKind::Interleaved {
                chunks: rng.gen_range(2usize..=4),
            },
        };
        let coin = |rng: &mut StdRng| rng.gen_range(0u32..2) == 1;
        job.shard_optimizer = coin(rng);
        job.recompute = coin(rng);
        job.vocab_parallel = coin(rng);
        job.retry = coin(rng);
        job.trace = coin(rng);
        job.comm_timeout = Duration::from_millis(rng.gen_range(1u64..120_000));
        job.hb_period = Duration::from_millis(rng.gen_range(1u64..1_000));
        // Seeds ride the JSON number as f64: exact for < 2^53; draw well
        // inside that.
        job.model_seed = rng.gen_range(0u64..(1 << 48));
        job.data_seed = rng.gen_range(0u64..(1 << 48));
        job.batch = rng.gen_range(1usize..=64);
        job.iters = rng.gen_range(1usize..=100);
        job.wire = match rng.gen_range(0u32..3) {
            0 => WireKind::Mailbox,
            1 => WireKind::Uds,
            _ => WireKind::Tcp,
        };
        job.checkpoint_every = rng.gen_range(0usize..=8);
        job.resume_from = rng.gen_range(0usize..=32);
        job.epoch = rng.gen_range(0usize..=8);

        // Adversarial f32 bit patterns: NaNs with random payloads (quiet
        // and signaling), subnormals, infinities, signed zeros, and
        // random normals.
        let lr_bits: u32 = match rng.gen_range(0u32..6) {
            // NaN: exponent all-ones, non-zero mantissa, random sign.
            0 => {
                let sign = (coin(rng) as u32) << 31;
                let payload = rng.gen_range(1u32..(1 << 23));
                sign | 0x7f80_0000 | payload
            }
            // Subnormal: exponent zero, non-zero mantissa.
            1 => {
                let sign = (coin(rng) as u32) << 31;
                sign | rng.gen_range(1u32..(1 << 23))
            }
            2 => f32::INFINITY.to_bits(),
            3 => f32::NEG_INFINITY.to_bits(),
            4 => (coin(rng) as u32) << 31, // ±0.0
            _ => rng.gen::<f32>().to_bits(),
        };
        job.lr = f32::from_bits(lr_bits);

        let text = job.to_json();
        let back = JobSpec::from_json(&text)
            .unwrap_or_else(|e| panic!("round-trip parse failed: {e}\n{text}"));

        assert_eq!(
            back.lr.to_bits(),
            lr_bits,
            "lr bit pattern mangled: {:#010x} -> {:#010x}",
            lr_bits,
            back.lr.to_bits()
        );
        // Bitwise lr equality established above; the full struct compare
        // would fail on NaN != NaN, so null out lr and compare the rest.
        let mut a = job;
        let mut b = back;
        a.lr = 0.0;
        b.lr = 0.0;
        assert_eq!(a, b, "non-lr field mangled by the JSON round-trip");
    });
}
