//! Differential conformance suite for the shared collective core: the
//! same `megatron-collective` step programs run through **every group
//! transport** (`megatron_dist::comm`, one OS thread per rank) and once
//! through the serial `reference_run` interpreter — and must agree **bit
//! for bit** at awkward group sizes and non-divisible buffer lengths.
//! Measured transport egress must simultaneously equal the program's
//! `sent_elems` and, at divisible lengths, the closed-form volume
//! functions the simulator side publishes.
//!
//! The transport axis ([`Mode`]) covers:
//! - **Mailbox** — the in-process per-edge mailboxes;
//! - **Reliable** — mailbox wrapped in the sequence-numbered retry layer;
//! - **Socket** — real Unix-domain sockets, one listener per rank, the
//!   same process-mode wiring `repro launch` uses (length-prefixed
//!   frames, reconnects, barriers riding the wire).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use megatron_repro::collective::{
    self as coll, reference_run, ReduceOp, SocketChannel, SocketNode, WireAddr,
};
use megatron_repro::dist::{
    broadcast_bytes, ring_all_gather_bytes, ring_all_reduce_bytes, ring_reduce_scatter_bytes,
    CommVolume, Group, GroupMember, TransportConfig, WireKind, BYTES_F32, DEFAULT_COMM_TIMEOUT,
};

/// Odd group sizes exercised everywhere below.
const SIZES: [usize; 3] = [3, 5, 7];

/// Which wire the group under test runs over.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Mailbox,
    Reliable,
    Socket,
}

const MODES: [Mode; 3] = [Mode::Mailbox, Mode::Reliable, Mode::Socket];

/// Deterministic per-rank input that differs across ranks and positions.
fn seeded(rank: usize, n: usize) -> Vec<f32> {
    (0..n)
        .map(|i| ((rank * 31 + i * 7) % 97) as f32 * 0.125 - 3.0)
        .collect()
}

/// Run `f` on every member of a fresh `g`-rank group over `mode`'s wire,
/// one OS thread per rank, and return the per-rank results in rank order.
fn with_group<R: Send>(mode: Mode, g: usize, f: impl Fn(GroupMember) -> R + Sync) -> Vec<R> {
    match mode {
        Mode::Mailbox => {
            let group = Group::new(g);
            run_threads(g, &f, move |_| Arc::clone(&group))
        }
        Mode::Reliable => {
            let cfg = TransportConfig {
                retry: Some(Default::default()),
                ..TransportConfig::default()
            };
            let group = Group::with_config(g, DEFAULT_COMM_TIMEOUT, cfg);
            run_threads(g, &f, move |_| Arc::clone(&group))
        }
        Mode::Socket => {
            // One listener + one single-member group per rank: exactly the
            // wiring of a real N-process job, minus the fork/exec.
            static WORLD: AtomicUsize = AtomicUsize::new(0);
            let dir = std::env::temp_dir().join(format!(
                "megatron-conformance-{}-{}",
                std::process::id(),
                WORLD.fetch_add(1, Ordering::Relaxed)
            ));
            std::fs::create_dir_all(&dir).unwrap();
            let nodes: Vec<Arc<SocketNode>> = (0..g)
                .map(|r| {
                    Arc::new(
                        SocketNode::bind(&WireAddr::Uds(dir.join(format!("r{r}.sock")))).unwrap(),
                    )
                })
                .collect();
            let addrs: Vec<Option<WireAddr>> =
                nodes.iter().map(|n| Some(n.addr().clone())).collect();
            let cfg = TransportConfig {
                wire: WireKind::Uds,
                ..TransportConfig::default()
            };
            let out = run_threads(g, &f, move |r| {
                let chan = SocketChannel::new(Arc::clone(&nodes[r]), 7000, r, addrs.clone());
                Group::with_socket(g, DEFAULT_COMM_TIMEOUT, cfg, chan)
            });
            let _ = std::fs::remove_dir_all(&dir);
            out
        }
    }
}

fn run_threads<R: Send>(
    g: usize,
    f: &(impl Fn(GroupMember) -> R + Sync),
    group_for: impl Fn(usize) -> Arc<Group> + Sync,
) -> Vec<R> {
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..g)
            .map(|r| {
                let m = group_for(r).member(r);
                s.spawn(move || f(m))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rank thread panicked"))
            .collect()
    })
}

#[test]
fn all_reduce_sum_matches_reference_bitwise() {
    for mode in MODES {
        for g in SIZES {
            // Lengths that do not divide by g (and one shorter than g).
            for n in [2usize, 10, 17, 23] {
                if n.is_multiple_of(g) {
                    continue; // divisible lengths have their own test below
                }
                let prog = coll::ring_all_reduce(g, n, ReduceOp::Sum);
                let mut reference: Vec<Vec<f32>> = (0..g).map(|r| seeded(r, n)).collect();
                reference_run(&prog, &mut reference);

                let real: Vec<(Vec<f32>, CommVolume)> = with_group(mode, g, |m| {
                    let mut buf = seeded(m.rank(), n);
                    m.try_all_reduce_sum(&mut buf).unwrap();
                    (buf, m.comm_volume())
                });
                for (rank, (buf, vol)) in real.iter().enumerate() {
                    assert_eq!(
                        buf, &reference[rank],
                        "{mode:?} g={g} n={n} rank {rank}: transport diverged from reference"
                    );
                    assert_eq!(
                        vol.all_reduce_bytes,
                        prog.sent_elems(rank) as f64 * BYTES_F32,
                        "{mode:?} g={g} n={n} rank {rank}: measured bytes != program egress"
                    );
                }
            }
        }
    }
}

#[test]
fn all_reduce_max_matches_reference_bitwise() {
    for mode in MODES {
        for g in SIZES {
            let n = 4 * g + 1; // non-divisible
            let prog = coll::ring_all_reduce(g, n, ReduceOp::Max);
            let mut reference: Vec<Vec<f32>> = (0..g).map(|r| seeded(r, n)).collect();
            reference_run(&prog, &mut reference);

            let real: Vec<Vec<f32>> = with_group(mode, g, |m| {
                let mut buf = seeded(m.rank(), n);
                m.try_all_reduce_max(&mut buf).unwrap();
                buf
            });
            for (rank, buf) in real.iter().enumerate() {
                assert_eq!(buf, &reference[rank], "{mode:?} g={g} rank {rank}");
            }
        }
    }
}

#[test]
fn all_gather_matches_reference_bitwise() {
    for mode in MODES {
        for g in SIZES {
            for part in [1, 5, 9] {
                let prog = coll::ring_all_gather(g, part);
                let mut reference: Vec<Vec<f32>> = (0..g)
                    .map(|r| {
                        let mut buf = vec![0.0f32; part * g];
                        buf[r * part..(r + 1) * part].copy_from_slice(&seeded(r, part));
                        buf
                    })
                    .collect();
                reference_run(&prog, &mut reference);

                let real: Vec<(Vec<f32>, CommVolume)> = with_group(mode, g, |m| {
                    let own = seeded(m.rank(), part);
                    (m.try_all_gather(&own).unwrap(), m.comm_volume())
                });
                for (rank, (buf, vol)) in real.iter().enumerate() {
                    assert_eq!(
                        buf, &reference[rank],
                        "{mode:?} g={g} part={part} rank {rank}"
                    );
                    // All-gather egress is exact at every length: g−1 rounds of
                    // one `part`-sized chunk each.
                    assert_eq!(vol.all_gather_bytes, ring_all_gather_bytes(g, part));
                    assert_eq!(
                        vol.all_gather_bytes,
                        prog.sent_elems(rank) as f64 * BYTES_F32
                    );
                }
            }
        }
    }
}

#[test]
fn reduce_scatter_matches_reference_bitwise() {
    // The group API requires divisible lengths (each rank owns an equal
    // shard); non-divisible chunking is exercised via all-reduce above,
    // whose program embeds the same reduce-scatter rounds.
    for mode in MODES {
        for g in SIZES {
            let n = 6 * g;
            let prog = coll::ring_reduce_scatter(g, n, ReduceOp::Sum);
            let mut reference: Vec<Vec<f32>> = (0..g).map(|r| seeded(r, n)).collect();
            reference_run(&prog, &mut reference);

            let chunk = n / g;
            let real: Vec<(Vec<f32>, CommVolume)> = with_group(mode, g, |m| {
                let buf = seeded(m.rank(), n);
                (m.try_reduce_scatter_sum(&buf).unwrap(), m.comm_volume())
            });
            for (rank, (shard, vol)) in real.iter().enumerate() {
                assert_eq!(
                    shard,
                    &reference[rank][rank * chunk..(rank + 1) * chunk],
                    "{mode:?} g={g} rank {rank}: owned shard diverged"
                );
                assert_eq!(vol.reduce_scatter_bytes, ring_reduce_scatter_bytes(g, n));
                assert_eq!(
                    vol.reduce_scatter_bytes,
                    prog.sent_elems(rank) as f64 * BYTES_F32
                );
            }
        }
    }
}

#[test]
fn broadcast_matches_reference_bitwise() {
    for mode in MODES {
        for g in SIZES {
            for root in [0, g - 1] {
                let n = 3 * g + 2; // non-divisible
                let prog = coll::ring_broadcast(g, n, root);
                let mut reference: Vec<Vec<f32>> = (0..g).map(|r| seeded(r, n)).collect();
                reference_run(&prog, &mut reference);

                let real: Vec<(Vec<f32>, CommVolume)> = with_group(mode, g, |m| {
                    let mut buf = seeded(m.rank(), n);
                    m.try_broadcast(&mut buf, root).unwrap();
                    (buf, m.comm_volume())
                });
                for (rank, (buf, vol)) in real.iter().enumerate() {
                    assert_eq!(
                        buf,
                        &seeded(root, n),
                        "{mode:?} g={g} root={root} rank {rank}"
                    );
                    assert_eq!(buf, &reference[rank]);
                    assert_eq!(
                        vol.broadcast_bytes,
                        prog.sent_elems(rank) as f64 * BYTES_F32
                    );
                }
                // The pipelined ring is per-rank asymmetric: the root (and
                // every middle position) forwards the whole buffer; the last
                // ring position sends nothing.
                let tail = (root + g - 1) % g;
                assert_eq!(real[root].1.broadcast_bytes, broadcast_bytes(g, n));
                assert_eq!(real[tail].1.broadcast_bytes, 0.0);
            }
        }
    }
}

#[test]
fn hierarchical_all_reduce_matches_reference_bitwise() {
    // Composite size so `local` is a proper divisor: 6 ranks as 3 nodes of
    // 2 and 2 nodes of 3, at a non-divisible length.
    let g = 6;
    for mode in MODES {
        for local in [2, 3] {
            let n = 25;
            let prog = coll::hierarchical_all_reduce(g, n, local, ReduceOp::Sum);
            let mut reference: Vec<Vec<f32>> = (0..g).map(|r| seeded(r, n)).collect();
            reference_run(&prog, &mut reference);

            let real: Vec<(Vec<f32>, CommVolume)> = with_group(mode, g, |m| {
                let mut buf = seeded(m.rank(), n);
                m.try_hierarchical_all_reduce_sum(&mut buf, local).unwrap();
                (buf, m.comm_volume())
            });
            for (rank, (buf, vol)) in real.iter().enumerate() {
                assert_eq!(buf, &reference[rank], "{mode:?} local={local} rank {rank}");
                assert_eq!(
                    vol.all_reduce_bytes,
                    prog.sent_elems(rank) as f64 * BYTES_F32
                );
            }
        }
    }
}

#[test]
fn divisible_lengths_match_closed_form_volumes() {
    // At divisible lengths the measured egress collapses to the familiar
    // 2(g−1)/g · n closed forms — the same functions the simulator's
    // analytical model publishes.
    for mode in MODES {
        for g in SIZES {
            let n = 8 * g;
            let vols: Vec<CommVolume> = with_group(mode, g, |m| {
                let mut buf = seeded(m.rank(), n);
                m.try_all_reduce_sum(&mut buf).unwrap();
                m.comm_volume()
            });
            for vol in vols {
                assert_eq!(
                    vol.all_reduce_bytes,
                    ring_all_reduce_bytes(g, n),
                    "{mode:?} g={g}"
                );
            }
        }
    }
}

#[test]
fn size_two_all_reduce_is_exact_at_every_length() {
    // The g=2 identity the trainer's telemetry cross-checks rely on:
    // per-rank all-reduce egress is exactly n elements for any n, even
    // when n doesn't halve evenly.
    for mode in MODES {
        for n in [1, 3, 7, 97] {
            let vols: Vec<CommVolume> = with_group(mode, 2, |m| {
                let mut buf = seeded(m.rank(), n);
                m.try_all_reduce_sum(&mut buf).unwrap();
                m.comm_volume()
            });
            for vol in vols {
                assert_eq!(vol.all_reduce_bytes, n as f64 * BYTES_F32, "{mode:?} n={n}");
            }
        }
    }
}
