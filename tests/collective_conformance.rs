//! Differential conformance suite for the shared collective core: the
//! same `megatron-collective` step programs run twice — once through the
//! real mailbox transport (`megatron_dist::comm`, one OS thread per rank)
//! and once through the serial `reference_run` interpreter — and must
//! agree **bit for bit** at awkward group sizes and non-divisible buffer
//! lengths. Measured transport egress must simultaneously equal the
//! program's `sent_elems` and, at divisible lengths, the closed-form
//! volume functions the simulator side publishes.

use megatron_repro::collective::{self as coll, reference_run, ReduceOp};
use megatron_repro::dist::{
    broadcast_bytes, ring_all_gather_bytes, ring_all_reduce_bytes, ring_reduce_scatter_bytes,
    CommVolume, Group, GroupMember, BYTES_F32,
};

/// Odd group sizes exercised everywhere below.
const SIZES: [usize; 3] = [3, 5, 7];

/// Deterministic per-rank input that differs across ranks and positions.
fn seeded(rank: usize, n: usize) -> Vec<f32> {
    (0..n)
        .map(|i| ((rank * 31 + i * 7) % 97) as f32 * 0.125 - 3.0)
        .collect()
}

/// Run `f` on every member of a fresh `g`-rank group, one OS thread per
/// rank, and return the per-rank results in rank order.
fn with_group<R: Send>(g: usize, f: impl Fn(GroupMember) -> R + Sync) -> Vec<R> {
    let group = Group::new(g);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..g)
            .map(|r| {
                let m = group.member(r);
                let f = &f;
                s.spawn(move || f(m))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rank thread panicked"))
            .collect()
    })
}

#[test]
fn all_reduce_sum_matches_reference_bitwise() {
    for g in SIZES {
        // Lengths that do not divide by g (and one shorter than g).
        for n in [2usize, 10, 17, 23] {
            if n.is_multiple_of(g) {
                continue; // divisible lengths have their own test below
            }
            let prog = coll::ring_all_reduce(g, n, ReduceOp::Sum);
            let mut reference: Vec<Vec<f32>> = (0..g).map(|r| seeded(r, n)).collect();
            reference_run(&prog, &mut reference);

            let real: Vec<(Vec<f32>, CommVolume)> = with_group(g, |m| {
                let mut buf = seeded(m.rank(), n);
                m.try_all_reduce_sum(&mut buf).unwrap();
                (buf, m.comm_volume())
            });
            for (rank, (buf, vol)) in real.iter().enumerate() {
                assert_eq!(
                    buf, &reference[rank],
                    "g={g} n={n} rank {rank}: transport diverged from reference"
                );
                assert_eq!(
                    vol.all_reduce_bytes,
                    prog.sent_elems(rank) as f64 * BYTES_F32,
                    "g={g} n={n} rank {rank}: measured bytes != program egress"
                );
            }
        }
    }
}

#[test]
fn all_reduce_max_matches_reference_bitwise() {
    for g in SIZES {
        let n = 4 * g + 1; // non-divisible
        let prog = coll::ring_all_reduce(g, n, ReduceOp::Max);
        let mut reference: Vec<Vec<f32>> = (0..g).map(|r| seeded(r, n)).collect();
        reference_run(&prog, &mut reference);

        let real: Vec<Vec<f32>> = with_group(g, |m| {
            let mut buf = seeded(m.rank(), n);
            m.try_all_reduce_max(&mut buf).unwrap();
            buf
        });
        for (rank, buf) in real.iter().enumerate() {
            assert_eq!(buf, &reference[rank], "g={g} rank {rank}");
        }
    }
}

#[test]
fn all_gather_matches_reference_bitwise() {
    for g in SIZES {
        for part in [1, 5, 9] {
            let prog = coll::ring_all_gather(g, part);
            let mut reference: Vec<Vec<f32>> = (0..g)
                .map(|r| {
                    let mut buf = vec![0.0f32; part * g];
                    buf[r * part..(r + 1) * part].copy_from_slice(&seeded(r, part));
                    buf
                })
                .collect();
            reference_run(&prog, &mut reference);

            let real: Vec<(Vec<f32>, CommVolume)> = with_group(g, |m| {
                let own = seeded(m.rank(), part);
                (m.try_all_gather(&own).unwrap(), m.comm_volume())
            });
            for (rank, (buf, vol)) in real.iter().enumerate() {
                assert_eq!(buf, &reference[rank], "g={g} part={part} rank {rank}");
                // All-gather egress is exact at every length: g−1 rounds of
                // one `part`-sized chunk each.
                assert_eq!(vol.all_gather_bytes, ring_all_gather_bytes(g, part));
                assert_eq!(
                    vol.all_gather_bytes,
                    prog.sent_elems(rank) as f64 * BYTES_F32
                );
            }
        }
    }
}

#[test]
fn reduce_scatter_matches_reference_bitwise() {
    // The group API requires divisible lengths (each rank owns an equal
    // shard); non-divisible chunking is exercised via all-reduce above,
    // whose program embeds the same reduce-scatter rounds.
    for g in SIZES {
        let n = 6 * g;
        let prog = coll::ring_reduce_scatter(g, n, ReduceOp::Sum);
        let mut reference: Vec<Vec<f32>> = (0..g).map(|r| seeded(r, n)).collect();
        reference_run(&prog, &mut reference);

        let chunk = n / g;
        let real: Vec<(Vec<f32>, CommVolume)> = with_group(g, |m| {
            let buf = seeded(m.rank(), n);
            (m.try_reduce_scatter_sum(&buf).unwrap(), m.comm_volume())
        });
        for (rank, (shard, vol)) in real.iter().enumerate() {
            assert_eq!(
                shard,
                &reference[rank][rank * chunk..(rank + 1) * chunk],
                "g={g} rank {rank}: owned shard diverged"
            );
            assert_eq!(vol.reduce_scatter_bytes, ring_reduce_scatter_bytes(g, n));
            assert_eq!(
                vol.reduce_scatter_bytes,
                prog.sent_elems(rank) as f64 * BYTES_F32
            );
        }
    }
}

#[test]
fn broadcast_matches_reference_bitwise() {
    for g in SIZES {
        for root in [0, g - 1] {
            let n = 3 * g + 2; // non-divisible
            let prog = coll::ring_broadcast(g, n, root);
            let mut reference: Vec<Vec<f32>> = (0..g).map(|r| seeded(r, n)).collect();
            reference_run(&prog, &mut reference);

            let real: Vec<(Vec<f32>, CommVolume)> = with_group(g, |m| {
                let mut buf = seeded(m.rank(), n);
                m.try_broadcast(&mut buf, root).unwrap();
                (buf, m.comm_volume())
            });
            for (rank, (buf, vol)) in real.iter().enumerate() {
                assert_eq!(buf, &seeded(root, n), "g={g} root={root} rank {rank}");
                assert_eq!(buf, &reference[rank]);
                assert_eq!(
                    vol.broadcast_bytes,
                    prog.sent_elems(rank) as f64 * BYTES_F32
                );
            }
            // The pipelined ring is per-rank asymmetric: the root (and
            // every middle position) forwards the whole buffer; the last
            // ring position sends nothing.
            let tail = (root + g - 1) % g;
            assert_eq!(real[root].1.broadcast_bytes, broadcast_bytes(g, n));
            assert_eq!(real[tail].1.broadcast_bytes, 0.0);
        }
    }
}

#[test]
fn hierarchical_all_reduce_matches_reference_bitwise() {
    // Composite size so `local` is a proper divisor: 6 ranks as 3 nodes of
    // 2 and 2 nodes of 3, at a non-divisible length.
    let g = 6;
    for local in [2, 3] {
        let n = 25;
        let prog = coll::hierarchical_all_reduce(g, n, local, ReduceOp::Sum);
        let mut reference: Vec<Vec<f32>> = (0..g).map(|r| seeded(r, n)).collect();
        reference_run(&prog, &mut reference);

        let real: Vec<(Vec<f32>, CommVolume)> = with_group(g, |m| {
            let mut buf = seeded(m.rank(), n);
            m.try_hierarchical_all_reduce_sum(&mut buf, local).unwrap();
            (buf, m.comm_volume())
        });
        for (rank, (buf, vol)) in real.iter().enumerate() {
            assert_eq!(buf, &reference[rank], "local={local} rank {rank}");
            assert_eq!(
                vol.all_reduce_bytes,
                prog.sent_elems(rank) as f64 * BYTES_F32
            );
        }
    }
}

#[test]
fn divisible_lengths_match_closed_form_volumes() {
    // At divisible lengths the measured egress collapses to the familiar
    // 2(g−1)/g · n closed forms — the same functions the simulator's
    // analytical model publishes.
    for g in SIZES {
        let n = 8 * g;
        let vols: Vec<CommVolume> = with_group(g, |m| {
            let mut buf = seeded(m.rank(), n);
            m.try_all_reduce_sum(&mut buf).unwrap();
            m.comm_volume()
        });
        for vol in vols {
            assert_eq!(vol.all_reduce_bytes, ring_all_reduce_bytes(g, n));
        }
    }
}

#[test]
fn size_two_all_reduce_is_exact_at_every_length() {
    // The g=2 identity the trainer's telemetry cross-checks rely on:
    // per-rank all-reduce egress is exactly n elements for any n, even
    // when n doesn't halve evenly.
    for n in [1, 3, 7, 97] {
        let vols: Vec<CommVolume> = with_group(2, |m| {
            let mut buf = seeded(m.rank(), n);
            m.try_all_reduce_sum(&mut buf).unwrap();
            m.comm_volume()
        });
        for vol in vols {
            assert_eq!(vol.all_reduce_bytes, n as f64 * BYTES_F32);
        }
    }
}
