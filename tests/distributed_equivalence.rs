//! Integration tests of the real thread-parallel training engine at larger
//! shapes than the unit tests: deeper pipelines, more heads, every
//! schedule, and the schedule-crate → dist-crate contract.

use megatron_repro::dist::{PtdpSpec, PtdpTrainer};
use megatron_repro::schedule::ScheduleKind;
use megatron_repro::tensor::gpt::{GptModel, TinyGptConfig};
use megatron_repro::tensor::Adam;
use rand::{Rng, SeedableRng};

fn cfg(layers: usize) -> TinyGptConfig {
    TinyGptConfig {
        vocab: 19,
        seq: 8,
        hidden: 16,
        heads: 4,
        layers,
    }
}

fn make_data(
    c: TinyGptConfig,
    batch: usize,
    iterations: usize,
    seed: u64,
) -> Vec<(Vec<usize>, Vec<usize>)> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    (0..iterations)
        .map(|_| {
            let toks: Vec<usize> = (0..batch * c.seq)
                .map(|_| rng.gen_range(0..c.vocab))
                .collect();
            let tgts: Vec<usize> = (0..batch * c.seq)
                .map(|_| rng.gen_range(0..c.vocab))
                .collect();
            (toks, tgts)
        })
        .collect()
}

fn serial_losses(master: &GptModel, data: &[(Vec<usize>, Vec<usize>)], lr: f32) -> Vec<f32> {
    let mut model = master.clone();
    let mut adam = Adam::new(lr);
    let batch = data[0].0.len() / model.cfg.seq;
    data.iter()
        .map(|(tokens, targets)| {
            model.zero_grads();
            let loss = model.loss_and_grad(tokens, targets, batch);
            let mut pairs = model.param_grad_pairs();
            adam.step(&mut pairs);
            loss
        })
        .collect()
}

fn check(c: TinyGptConfig, spec: PtdpSpec, batch: usize, iterations: usize) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(2024);
    let master = GptModel::new(c, &mut rng);
    let data = make_data(c, batch, iterations, 7);
    let serial = serial_losses(&master, &data, spec.lr);
    let log = PtdpTrainer::new(master, spec).train(&data);
    for (i, (a, b)) in log.losses.iter().zip(&serial).enumerate() {
        assert!(
            (a - b).abs() < 1e-2,
            "iter {i}: ptdp {a} vs serial {b}\nptdp: {:?}\nserial: {serial:?}",
            log.losses
        );
    }
}

#[test]
fn deep_pipeline_4_stages() {
    let mut spec = PtdpSpec::new(4, 1, 1);
    spec.microbatch = 1;
    check(cfg(4), spec, 8, 3);
}

#[test]
fn deep_pipeline_gpipe() {
    let mut spec = PtdpSpec::new(4, 1, 1);
    spec.schedule = ScheduleKind::GPipe;
    spec.microbatch = 2;
    check(cfg(4), spec, 8, 3);
}

#[test]
fn interleaved_v2_on_4_devices() {
    let mut spec = PtdpSpec::new(4, 1, 1);
    spec.chunks = 2;
    spec.schedule = ScheduleKind::Interleaved { chunks: 2 };
    spec.microbatch = 1;
    check(cfg(8), spec, 8, 3); // m = 8, multiple of p = 4
}

#[test]
fn wide_tensor_parallelism() {
    let mut spec = PtdpSpec::new(1, 4, 1);
    spec.microbatch = 2;
    check(cfg(2), spec, 4, 3);
}

#[test]
fn four_way_data_parallelism() {
    let mut spec = PtdpSpec::new(1, 1, 4);
    spec.microbatch = 1;
    check(cfg(2), spec, 8, 3);
}

#[test]
fn twelve_thread_ptdp_with_interleaving() {
    // p=2 (v=2), t=3? — t must divide heads (4); use t=2, d=3: 12 threads.
    let mut spec = PtdpSpec::new(2, 2, 3);
    spec.chunks = 2;
    spec.schedule = ScheduleKind::Interleaved { chunks: 2 };
    spec.microbatch = 1;
    check(cfg(4), spec, 12, 3); // per replica 4 samples → m=4, mult of p=2
}

#[test]
fn microbatch_size_does_not_change_semantics() {
    // Same data, different microbatch sizes: identical loss trajectories
    // (strict optimizer semantics — the whole point of the pipeline flush).
    let c = cfg(2);
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let master = GptModel::new(c, &mut rng);
    let data = make_data(c, 8, 3, 9);

    let run = |b: usize| {
        let mut spec = PtdpSpec::new(2, 1, 1);
        spec.microbatch = b;
        PtdpTrainer::new(master.clone(), spec).train(&data).losses
    };
    let l1 = run(1);
    let l2 = run(2);
    let l4 = run(4);
    for i in 0..3 {
        assert!((l1[i] - l2[i]).abs() < 5e-3, "b=1 vs b=2 at iter {i}");
        assert!((l1[i] - l4[i]).abs() < 5e-3, "b=1 vs b=4 at iter {i}");
    }
}

#[test]
fn schedules_agree_with_each_other() {
    // GPipe and 1F1B implement the same semantics; their training
    // trajectories must match (they differ only in execution order).
    let c = cfg(2);
    let mut rng = rand::rngs::StdRng::seed_from_u64(15);
    let master = GptModel::new(c, &mut rng);
    let data = make_data(c, 4, 3, 11);
    let mk = |kind: ScheduleKind| {
        let mut spec = PtdpSpec::new(2, 1, 1);
        spec.schedule = kind;
        spec.microbatch = 1;
        PtdpTrainer::new(master.clone(), spec).train(&data).losses
    };
    let a = mk(ScheduleKind::GPipe);
    let b = mk(ScheduleKind::OneFOneB);
    for (x, y) in a.iter().zip(&b) {
        assert!((x - y).abs() < 1e-4, "{a:?} vs {b:?}");
    }
}
