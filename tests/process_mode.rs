//! Process-mode acceptance tests (harness = false: this binary re-execs
//! **itself** as the rank workers, so it must own `main`).
//!
//! 1. The seeded canonical (2,2,2) job launched as **8 OS processes over
//!    Unix-domain sockets** produces bit-identical losses and final
//!    parameters to the in-process mailbox run, with per-GPU socket byte
//!    counts equal to the comm-tape's closed forms (the same §3 identities
//!    `tests/real_vs_sim_bytes.rs` proves against the simulator).
//! 2. Heartbeats flow over the socket transport: SIGKILLing one rank
//!    process leaves it classified **dead** by the launcher-side
//!    [`HealthMonitor`](megatron_repro::dist::HealthMonitor) while the
//!    stalled survivors keep beating.
//! 3. Self-healing: a SIGKILL mid-run is detected by the
//!    [`ProcSupervisor`](megatron_repro::dist::ProcSupervisor), which
//!    restores the latest durable generation and respawns; the healed
//!    run's final parameters are bit-identical to a fault-free run.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use megatron_repro::dist::proc::{launch, maybe_worker, JobSpec, ProcKill, ProcSupervisor};
use megatron_repro::dist::PtdpTrainer;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("megatron-procmode-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn eight_uds_processes_bit_identical_to_in_process() {
    let job = JobSpec::canonical(2, 2, 2);
    let dir = scratch("bitident");
    let handle = launch(&job, &dir).expect("launch 8 rank processes");
    let out = handle.wait();
    assert!(
        out.ok(),
        "process run failed: missing={:?} errors={:?}",
        out.missing,
        out.outputs
            .values()
            .filter_map(|o| o.error.clone())
            .collect::<Vec<_>>()
    );

    // The same job, in-process (threads + mailbox transport).
    let spec = job.spec();
    let log = PtdpTrainer::new(job.master(), spec).train(&job.dataset());

    assert_eq!(out.losses, log.losses, "losses must be bit-identical");
    assert_eq!(out.outputs.len(), spec.world());
    let mut total_bytes = 0.0;
    for (key, o) in &out.outputs {
        assert_eq!(
            o.params, log.final_params[key],
            "final params differ at {key:?}"
        );
        assert_eq!(
            o.volume, log.comm_volumes[key],
            "socket-measured comm volume differs at {key:?}"
        );
        // The §3 identity, per GPU: bytes measured on the socket wire ==
        // bytes the rank's op tape implies via the ring closed forms.
        assert_eq!(
            o.tape_bytes,
            o.volume.total_bytes(),
            "closed-form bytes != socket bytes at {key:?}"
        );
        assert!(o.steps >= job.iters, "rank {key:?} finished every step");
        total_bytes += o.volume.total_bytes();
    }
    assert!(total_bytes > 0.0, "run moved no bytes — vacuous identity");

    let _ = std::fs::remove_dir_all(&dir);
    println!("ok - eight_uds_processes_bit_identical_to_in_process");
}

fn sigkilled_rank_process_classified_dead() {
    let mut job = JobSpec::canonical(2, 2, 2);
    // Long enough to be running when the kill lands; the handle kills the
    // survivors afterwards (and on drop), so this bound is never reached.
    job.iters = 100_000;
    // Survivors must still be stalled-but-alive at classification time.
    job.comm_timeout = Duration::from_secs(30);
    job.hb_period = Duration::from_millis(20);
    let spec = job.spec();
    let world = spec.world();
    let dir = scratch("sigkill");
    let handle = launch(&job, &dir).expect("launch 8 rank processes");
    let monitor = handle.monitor();

    // Wait until every rank's beacon has pulsed a few times.
    let t0 = Instant::now();
    while (0..world).any(|r| monitor.beats(r) < 3) {
        assert!(
            t0.elapsed() < Duration::from_secs(30),
            "workers never started beating: {:?}",
            (0..world).map(|r| monitor.beats(r)).collect::<Vec<_>>()
        );
        std::thread::sleep(Duration::from_millis(5));
    }

    let victim = 3; // thread (0, 1, 1)
    assert!(handle.kill_rank(victim), "SIGKILL rank {victim}");
    // dead-after is 4 heartbeat periods (80 ms); give it 5×.
    std::thread::sleep(Duration::from_millis(400));

    let report = monitor.classify(25.0);
    let victim_key = spec.thread_key(victim);
    assert!(
        report.dead().contains(&victim_key),
        "SIGKILLed rank {victim_key:?} not classified dead: {:?}",
        report.ranks
    );
    for r in 0..world {
        if r != victim {
            let key = spec.thread_key(r);
            assert!(
                !report.dead().contains(&key),
                "survivor {key:?} (still beating via its beacon) classified dead: {:?}",
                report.ranks
            );
        }
    }

    handle.kill_all();
    let out = handle.wait();
    assert!(
        out.missing.contains(&victim_key),
        "a SIGKILLed rank leaves no output file"
    );
    let _ = std::fs::remove_dir_all(&dir);
    println!("ok - sigkilled_rank_process_classified_dead");
}

/// 3. Self-healing round-trip: SIGKILL a rank mid-run, the supervisor
///    restores the latest durable generation, respawns the job pinned at
///    it, and the healed run's final parameters are bit-identical to a
///    fault-free process run of the same job.
fn supervisor_respawn_round_trip_bit_identical() {
    let mut job = JobSpec::canonical(2, 2, 2);
    job.iters = 6;
    job.checkpoint_every = 2;
    job.retry = true;

    // Fault-free reference, as real processes.
    let clean_dir = scratch("respawn-clean");
    let clean = launch(&job, &clean_dir)
        .expect("launch fault-free run")
        .wait();
    assert!(clean.ok(), "fault-free process run failed");

    // Same job under supervision, rank 3 SIGKILLed after 2 iterations.
    let root = scratch("respawn-chaos");
    let sup = ProcSupervisor::new(&job, &root);
    let report = sup
        .run(
            &[ProcKill {
                rank: 3,
                after_iter: 2,
            }],
            None,
        )
        .expect("supervised run must heal within its restart budget");

    assert!(report.attempts >= 2, "the SIGKILL must force a respawn");
    assert!(
        !report.incidents.is_empty(),
        "the SIGKILL must be recorded as an incident"
    );
    assert!(
        report.incidents[0].dead_ranks.contains(&3),
        "incident must name the SIGKILLed rank: {:?}",
        report.incidents[0]
    );
    assert!(
        report.outcome.ok(),
        "healed run's final attempt was not clean"
    );
    assert_eq!(
        report.outcome.losses.len(),
        job.iters,
        "healed run must report every iteration's loss"
    );

    let spec = job.spec();
    assert_eq!(report.outcome.outputs.len(), spec.world());
    for (key, o) in &report.outcome.outputs {
        assert_eq!(
            o.params, clean.outputs[key].params,
            "healed params differ from fault-free at {key:?}"
        );
    }

    let _ = std::fs::remove_dir_all(&clean_dir);
    let _ = std::fs::remove_dir_all(&root);
    println!("ok - supervisor_respawn_round_trip_bit_identical");
}

fn main() {
    // Rank-worker re-entry: `--proc-worker <dir> <rank>` runs the worker
    // and exits, everything else falls through to the tests.
    maybe_worker();

    eight_uds_processes_bit_identical_to_in_process();
    sigkilled_rank_process_classified_dead();
    supervisor_respawn_round_trip_bit_identical();
    println!("process_mode: all tests passed");
}
