//! Golden-file style checks on the telemetry exporters: a real `(2,2,2)`
//! run must produce a valid Chrome trace with every expected span category
//! on every rank, per-iteration JSONL metric snapshots, and comm-volume
//! counters that match the paper's §3 formulas exactly.

use std::collections::BTreeSet;
use std::sync::Arc;

use megatron_dist::{PtdpSpec, PtdpTrainer, RunControl};
use megatron_model::{GptConfig, BYTES_FP16};
use megatron_parallel::analysis;
use megatron_sim::json::Json;
use megatron_telemetry::{
    chrome_trace_json, rank_pid, GpuSpec, SinkConfig, SpanKind, TelemetrySink,
};
use megatron_tensor::gpt::{GptModel, TinyGptConfig};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CFG: TinyGptConfig = TinyGptConfig {
    vocab: 11,
    seq: 6,
    hidden: 16,
    heads: 2,
    layers: 2,
};

fn mirror() -> GptConfig {
    GptConfig {
        name: "telemetry-test".to_string(),
        num_layers: CFG.layers as u64,
        hidden_size: CFG.hidden as u64,
        num_heads: CFG.heads as u64,
        seq_len: CFG.seq as u64,
        vocab_size: CFG.vocab as u64,
    }
}

fn run_222(
    iters: usize,
    batch: usize,
    checkpoint_every: Option<usize>,
) -> (Arc<TelemetrySink>, megatron_dist::TrainLog, PtdpSpec) {
    let spec = PtdpSpec::new(2, 2, 2);
    let sink = TelemetrySink::new(SinkConfig {
        world: spec.world(),
        flops_per_iteration: mirror().flops_per_iteration_eq3(batch as u64),
        gpu: Some(GpuSpec::a100_80gb()),
    });
    let mut rng = StdRng::seed_from_u64(42);
    let master = GptModel::new(CFG, &mut rng);
    let data: Vec<(Vec<usize>, Vec<usize>)> = (0..iters)
        .map(|_| {
            let toks = (0..batch * CFG.seq)
                .map(|_| rng.gen_range(0..CFG.vocab))
                .collect();
            let tgts = (0..batch * CFG.seq)
                .map(|_| rng.gen_range(0..CFG.vocab))
                .collect();
            (toks, tgts)
        })
        .collect();
    let ctl = RunControl {
        checkpoint_every,
        telemetry: Some(Arc::clone(&sink)),
        ..Default::default()
    };
    let out = PtdpTrainer::new(master, spec).train_with(&data, ctl);
    assert!(out.error.is_none(), "run failed: {:?}", out.error);
    (sink, out.log, spec)
}

#[test]
fn real_222_trace_has_every_category_on_every_rank() {
    let (sink, _log, spec) = run_222(3, 8, Some(2));
    let trace = chrome_trace_json(&sink.hub, 2);
    let v = Json::parse(&trace).expect("trace is valid JSON");
    let events = v.as_array().expect("trace is a JSON array");

    // Per-rank category coverage, pids offset past the sim's pid 0.
    let mut cats: Vec<BTreeSet<String>> = vec![BTreeSet::new(); spec.world()];
    let mut meta = 0usize;
    for ev in events {
        match ev["ph"].as_str() {
            Some("M") => meta += 1,
            Some("X") => {
                let pid = ev["pid"].as_f64().unwrap() as usize;
                assert!(pid >= rank_pid(0), "real spans must not use the sim pid 0");
                let rank = pid - rank_pid(0);
                assert!(rank < spec.world());
                cats[rank].insert(ev["cat"].as_str().unwrap().to_string());
                // Every span carries its iteration + incident epoch.
                assert!(ev["args"]["iteration"].as_f64().is_some());
                assert!(ev["args"]["epoch"].as_f64().is_some());
            }
            other => panic!("unexpected event phase {other:?}"),
        }
    }
    assert_eq!(meta, spec.world(), "one process_name metadata row per rank");
    for (rank, set) in cats.iter().enumerate() {
        for want in ["fwd", "bwd", "comm", "opt", "bubble", "ckpt"] {
            assert!(set.contains(want), "rank {rank} missing '{want}': {set:?}");
        }
        for got in set {
            assert!(
                SpanKind::ALL_CATEGORIES.contains(&got.as_str()),
                "unknown category {got}"
            );
        }
    }
}

#[test]
fn comm_spans_sit_on_the_net_row_with_byte_args() {
    let (sink, _log, _spec) = run_222(2, 8, None);
    let trace = chrome_trace_json(&sink.hub, 2);
    let v = Json::parse(&trace).unwrap();
    for ev in v.as_array().unwrap() {
        if ev["ph"].as_str() != Some("X") {
            continue;
        }
        let tid = ev["tid"].as_f64().unwrap() as usize;
        if ev["cat"].as_str() == Some("comm") {
            // Comm rows sit at tid = p + stage, like the sim's net ports;
            // p2p/collective spans all carry their algorithmic byte volume.
            assert!((2..4).contains(&tid), "comm tid {tid} outside net rows");
            assert!(
                ev["args"]["bytes"].as_f64().is_some(),
                "comm span without bytes: {ev:?}"
            );
        } else {
            assert!(tid < 2, "compute-side span on a net row: {ev:?}");
        }
    }
}

#[test]
fn jsonl_snapshots_report_throughput_and_bubble() {
    let iters = 3;
    let (sink, _log, _spec) = run_222(iters, 8, None);
    let jsonl = sink.metrics_jsonl();
    let lines: Vec<&str> = jsonl.lines().collect();
    assert_eq!(lines.len(), iters, "one snapshot per iteration");
    for (i, line) in lines.iter().enumerate() {
        let v = Json::parse(line).expect("snapshot line parses");
        assert_eq!(v["iteration"].as_f64(), Some(i as f64));
        assert_eq!(v["epoch"].as_f64(), Some(0.0));
        assert!(v["seconds"].as_f64().unwrap() > 0.0);
        assert!(v["gauges"]["achieved_tflops_per_gpu"].as_f64().unwrap() > 0.0);
        assert!(v["gauges"]["mfu"].as_f64().unwrap() > 0.0);
        let bub = v["gauges"]["bubble_fraction"].as_f64().unwrap();
        assert!((0.0..1.0).contains(&bub), "bubble fraction {bub}");
        assert_eq!(
            v["histograms"]["iteration_seconds"]["count"].as_f64(),
            Some((i + 1) as f64)
        );
    }
    // The aggregate comm counters landed in the registry after the run.
    assert!(sink.metrics.counter("comm_bytes_total").get() > 0);
    assert!(sink.metrics.counter("comm_bytes.rank.p0d0t0").get() > 0);
}

#[test]
fn comm_counters_match_section3_formulas() {
    let iters = 2;
    let batch = 8; // per replica 4 → m = 4 microbatches of b = 1
    let (_sink, log, spec) = run_222(iters, batch, None);
    let mirror = mirror();
    let (p, t, d) = (2u64, 2u64, 2u64);
    let m = (batch / 2 / spec.microbatch) as f64;
    let layers_per_stage = (CFG.layers as u64 / p) as f64;

    // Rank (0,0,0): first stage, no LM head, so the tensor group carries
    // exactly the 4 ring all-reduces of b·s·h per layer per microbatch the
    // paper counts in §3.2 — in f32, i.e. 2× the fp16 formula.
    let vol = log.comm_volumes[&(0, 0, 0)];
    let want_tensor = 2.0
        * iters as f64
        * m
        * layers_per_stage
        * analysis::tensor_parallel_bytes_per_layer(&mirror, spec.microbatch as u64, t);
    assert!(
        (vol.tensor.all_reduce_bytes - want_tensor).abs() < 1e-6,
        "tensor AR: counted {} want {want_tensor}",
        vol.tensor.all_reduce_bytes
    );

    // §3 pipeline p2p: b·s·h words per microbatch per boundary, forward
    // only for the first stage (it receives, not sends, the backward).
    let want_p2p = 2.0
        * iters as f64
        * m
        * analysis::pipeline_p2p_bytes(&mirror, spec.microbatch as u64) as f64;
    assert!(
        (vol.p2p_send_bytes - want_p2p).abs() < 1e-6,
        "p2p: counted {} want {want_p2p}",
        vol.p2p_send_bytes
    );

    // §3.3.1 data-parallel ring all-reduce over this rank's gradients.
    let grad_bytes_fp16 = log.final_params[&(0, 0, 0)].len() as u64 * BYTES_FP16;
    let want_data = 2.0 * iters as f64 * analysis::data_parallel_bytes(grad_bytes_fp16, d);
    assert!(
        (vol.data.all_reduce_bytes - want_data).abs() < 1e-6,
        "data AR: counted {} want {want_data}",
        vol.data.all_reduce_bytes
    );

    // A last-stage loss-owning rank additionally all-reduces the scalar
    // loss over the data group: exactly 2·(d−1)/d·1·4 B per iteration more.
    let vol_last = log.comm_volumes[&(1, 0, 0)];
    let grad_last_fp16 = log.final_params[&(1, 0, 0)].len() as u64 * BYTES_FP16;
    let want_last = 2.0 * iters as f64 * analysis::data_parallel_bytes(grad_last_fp16, d)
        + iters as f64 * megatron_dist::ring_all_reduce_bytes(d as usize, 1);
    assert!(
        (vol_last.data.all_reduce_bytes - want_last).abs() < 1e-6,
        "last-stage data AR: counted {} want {want_last}",
        vol_last.data.all_reduce_bytes
    );
}
