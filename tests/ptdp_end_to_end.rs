//! Cross-crate integration: heuristic configuration → end-to-end simulated
//! iteration → paper-band assertions.

use megatron_repro::cluster::ClusterSpec;
use megatron_repro::core::{RunError, TrainingOptions, TrainingRun};
use megatron_repro::model::zoo;
use megatron_repro::parallel::{heuristics, ConfigError, ParallelConfig};
use megatron_repro::schedule::ScheduleKind;

/// Every Table 1 row, simulated with the paper's (t, p) and our heuristic
/// microbatch, must land within 15% of the paper's reported TF/s per GPU.
#[test]
fn table1_rows_within_band() {
    for row in zoo::table1() {
        let d = row.n_gpus / (row.tensor_parallel * row.pipeline_parallel);
        let cluster = ClusterSpec::selene(row.n_gpus as usize);
        // The paper doesn't publish per-row microbatch sizes; take the best
        // of the standard candidates, as their tuning would have.
        let best = [1u64, 2, 4, 8, 16]
            .iter()
            .filter_map(|&b| {
                let pc = ParallelConfig::new(
                    row.pipeline_parallel,
                    row.tensor_parallel,
                    d,
                    b,
                    row.batch_size,
                );
                TrainingRun::ptdp(row.config.clone(), cluster.clone(), pc)
                    .simulate()
                    .ok()
                    .map(|r| r.tflops_per_gpu)
            })
            .fold(0.0f64, f64::max);
        let rel = (best - row.paper_tflops_per_gpu).abs() / row.paper_tflops_per_gpu;
        assert!(
            rel < 0.15,
            "{}: {best:.0} TF/s vs paper {:.0} (rel {rel:.2})",
            row.config.name,
            row.paper_tflops_per_gpu,
        );
    }
}

/// The heuristic configurator reproduces the paper's Table 1 (t, p)
/// choices exactly, for all ten rows.
#[test]
fn heuristics_reproduce_table1_choices() {
    for row in zoo::table1() {
        let cluster = ClusterSpec::selene(row.n_gpus as usize);
        let c = heuristics::suggest_config(&row.config, &cluster, row.batch_size)
            .unwrap_or_else(|e| panic!("{}: {e}", row.config.name));
        assert_eq!(
            (c.tensor, c.pipeline),
            (row.tensor_parallel, row.pipeline_parallel),
            "{}",
            row.config.name
        );
    }
}

/// Trillion-parameter flagship run: weak-scaling endpoint of Table 1,
/// including the §5.9 bisection-traffic figures.
#[test]
fn trillion_parameter_flagship() {
    let pc = ParallelConfig::new(64, 8, 6, 1, 3072).with_chunks(2);
    let report = TrainingRun::ptdp(zoo::gpt_1t(), ClusterSpec::selene(3072), pc)
        .simulate()
        .expect("1T config valid");
    // Paper: 163 TF/s per GPU (52%), 502 PF/s aggregate.
    assert!((report.tflops_per_gpu - 163.0).abs() < 25.0, "{report:?}");
    assert!(report.aggregate_pflops > 400.0 && report.aggregate_pflops < 600.0);
    // Paper: 892 GB/s effective pipeline bisection bandwidth.
    let bw = report.pipeline_bisection_bandwidth();
    assert!(
        bw > 500e9 && bw < 1300e9,
        "pipeline bisection bandwidth {bw:.3e}"
    );
    // Fits in memory with recomputation.
    assert!(report.memory_bytes_per_gpu < 80 * (1 << 30));
}

/// The simulated idle fraction must never undercut the analytical bubble
/// bound, across schedules and shapes.
#[test]
fn simulated_idle_respects_analytical_bound() {
    let model = zoo::gpt_5p9b();
    for (p, t, v, batch) in [
        (2u64, 4u64, 1u64, 16u64),
        (4, 2, 1, 32),
        (4, 2, 2, 32),
        (8, 2, 1, 64),
    ] {
        let pc = ParallelConfig::new(p, t, 1, 1, batch).with_chunks(v);
        let run = TrainingRun::ptdp(model.clone(), ClusterSpec::selene((t * p) as usize), pc);
        let report = run.simulate().unwrap();
        assert!(
            report.measured_idle_fraction >= report.analytical_bubble_fraction - 1e-9,
            "(p={p}, t={t}, v={v}, B={batch}): idle {} < bubble {}",
            report.measured_idle_fraction,
            report.analytical_bubble_fraction
        );
    }
}

/// §2.2.2's tradeoff, end to end: interleaving shrinks the bubble but
/// raises pipeline communication volume by v.
#[test]
fn interleaving_tradeoff_end_to_end() {
    let model = zoo::gpt_5p9b(); // 32 layers
    let cluster = ClusterSpec::selene(16);
    let base_pc = ParallelConfig::new(8, 2, 1, 1, 16);
    let base = TrainingRun::ptdp(model.clone(), cluster.clone(), base_pc)
        .simulate()
        .unwrap();
    let int_pc = base_pc.with_chunks(4);
    let inter = TrainingRun::ptdp(model, cluster, int_pc)
        .simulate()
        .unwrap();
    assert!(inter.analytical_bubble_fraction < base.analytical_bubble_fraction);
    let ratio = inter.comm.pipeline_p2p_bytes_per_gpu / base.comm.pipeline_p2p_bytes_per_gpu;
    assert!(
        (ratio - 31.0 / 7.0).abs() < 0.2,
        "v=4 has (p·v−1)/(p−1)·... more boundary traffic, got ratio {ratio}"
    );
}

/// Scatter/gather (§4.1) cuts per-GPU pipeline bytes by t.
#[test]
fn scatter_gather_cuts_wire_bytes_by_t() {
    let model = zoo::gpt_162b();
    let cluster = ClusterSpec::selene(64);
    let pc = ParallelConfig::new(8, 8, 1, 1, 32);
    let mut with = TrainingRun::ptdp(model, cluster, pc);
    with.options.enforce_memory = false;
    let mut without = with.clone();
    without.options.scatter_gather = false;
    let a = with.simulate().unwrap();
    let b = without.simulate().unwrap();
    let ratio = b.comm.pipeline_p2p_bytes_per_gpu / a.comm.pipeline_p2p_bytes_per_gpu;
    assert!((ratio - 8.0).abs() < 0.01, "got ratio {ratio}");
}

/// Recomputation trades compute for memory, end to end (§3.5, Figure 17).
#[test]
fn recomputation_tradeoff() {
    let model = zoo::gpt_145b();
    let cluster = ClusterSpec::selene(128);
    let pc = ParallelConfig::new(16, 8, 1, 1, 4);
    let mut with = TrainingRun::ptdp(model, cluster, pc);
    with.options.enforce_memory = false;
    let mut without = with.clone();
    without.options.recompute = false;
    let a = with.simulate().unwrap();
    let b = without.simulate().unwrap();
    assert!(
        b.sequences_per_second > a.sequences_per_second,
        "recompute must cost throughput at small batch"
    );
    assert!(
        a.memory_bytes_per_gpu < b.memory_bytes_per_gpu,
        "recompute must save memory"
    );
    // Paper: up to 33% loss at small batch; ours should be in that family.
    let slowdown = 1.0 - a.sequences_per_second / b.sequences_per_second;
    assert!(slowdown > 0.10 && slowdown < 0.45, "slowdown {slowdown}");
}

/// Config errors surface with precise reasons across the stack.
#[test]
fn error_paths() {
    let model = zoo::gpt3_175b();
    // OOM on a single node.
    let run = TrainingRun::ptdp(
        model.clone(),
        ClusterSpec::selene(8),
        ParallelConfig::new(1, 8, 1, 1, 8),
    );
    assert!(matches!(
        run.simulate(),
        Err(RunError::Config(ConfigError::OutOfMemory { .. }))
    ));
    // Wrong GPU count.
    let run = TrainingRun::ptdp(
        model.clone(),
        ClusterSpec::selene(16),
        ParallelConfig::new(1, 8, 1, 1, 8),
    );
    assert!(matches!(
        run.simulate(),
        Err(RunError::Config(ConfigError::WrongGpuCount { .. }))
    ));
    // Schedule/chunk mismatch.
    let mut run = TrainingRun::ptdp(
        model,
        ClusterSpec::selene(96),
        ParallelConfig::new(12, 8, 1, 1, 24).with_chunks(2),
    );
    run.options.schedule = ScheduleKind::OneFOneB;
    run.options.enforce_memory = false;
    assert!(matches!(
        run.simulate(),
        Err(RunError::ChunkMismatch { .. })
    ));
}

/// Default options match the paper's best practice.
#[test]
fn default_options_are_papers() {
    let o = TrainingOptions::default();
    assert!(o.scatter_gather && o.fused && o.recompute && o.blocking_p2p);
    assert_eq!(o.schedule, ScheduleKind::OneFOneB);
}
