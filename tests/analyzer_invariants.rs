//! Randomized and end-to-end invariants of the trace analyzer
//! (`megatron-telemetry`'s DAG / critical-path / attribution stack).
//!
//! The load-bearing property is *exact tiling*: the critical path's
//! segments partition the analysis window, so the attribution categories
//! sum to the measured wall time with zero residue — on arbitrary
//! synthetic traces (including adversarial ones whose p2p joins produce
//! edges no real run would) and on a real `(p=2, t=2, d=2)` trainer run.

use megatron_repro::telemetry::{
    build_dag, critical_path, what_if, ARank, ASpan, Attribution, PathCat, Phase, Window,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: u64 = 96;

fn for_cases(body: impl Fn(&mut StdRng)) {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x05ee_da11 + case);
        body(&mut rng);
    }
}

/// A random busy/idle timeline for one rank: disjoint spans of every
/// phase, with gaps, drawn from the real trainer's name vocabulary so the
/// p2p/collective joiners engage.
fn random_spans(rng: &mut StdRng) -> Vec<ASpan> {
    const MENU: [(&str, Phase); 8] = [
        ("forward", Phase::Compute),
        ("backward", Phase::Compute),
        ("p2p-send-fwd", Phase::Comm),
        ("p2p-send-bwd", Phase::Comm),
        ("grad-allreduce", Phase::Comm),
        ("pipeline-wait-fwd", Phase::Bubble),
        ("adam-step", Phase::Optimizer),
        ("checkpoint-save", Phase::Checkpoint),
    ];
    let mut cursor = rng.gen_range(0u64..200);
    let mut spans = Vec::new();
    for _ in 0..rng.gen_range(1usize..=40) {
        if rng.gen_bool(0.4) {
            cursor += rng.gen_range(1u64..300); // idle gap
        }
        let (name, phase) = MENU[rng.gen_range(0..MENU.len())];
        let dur = rng.gen_range(1u64..=1000);
        spans.push(ASpan {
            name: name.to_string(),
            phase,
            start_ns: cursor,
            dur_ns: dur,
            epoch: Some(0),
            iteration: Some(0),
            microbatch: Some(rng.gen_range(0u64..3)),
            chunk: Some(0),
            pass: None,
            bytes: None,
        });
        cursor += dur;
    }
    spans
}

/// Random world: either a pure pipeline `(p,1,1)` (exercises p2p joins)
/// or a pure data-parallel group `(1,d,1)` (exercises collective gating).
fn random_dag(rng: &mut StdRng) -> megatron_repro::telemetry::TraceDag {
    let pipeline = rng.gen_bool(0.5);
    let n = rng.gen_range(1usize..=4);
    let ranks: Vec<ARank> = (0..n)
        .map(|r| ARank {
            rank: r,
            key: if pipeline { (r, 0, 0) } else { (0, r, 0) },
            spans: random_spans(rng),
        })
        .collect();
    build_dag(ranks, if pipeline { n } else { 1 }, false)
}

/// The critical path tiles the window exactly: segments are contiguous,
/// in order, and their category totals sum to the window length with zero
/// residue; span-attributed path time never exceeds the trace's total
/// span time; and the window is at least the busiest rank's busy time.
#[test]
fn path_tiles_window_and_attribution_has_no_residue() {
    for_cases(|rng| {
        let dag = random_dag(rng);
        let w = Window::default();
        let path = critical_path(&dag, w).expect("every rank has spans");
        assert!(
            !path.truncated,
            "walk truncated on a {}-rank trace",
            dag.ranks.len()
        );

        // Contiguous tiling, forward order.
        let mut cursor = path.window_start_ns;
        for seg in &path.segments {
            assert_eq!(seg.start_ns, cursor, "gap or overlap in path segments");
            assert!(seg.end_ns > seg.start_ns);
            cursor = seg.end_ns;
        }
        assert_eq!(
            cursor, path.window_end_ns,
            "path does not reach the window end"
        );

        // Categories sum to the measured window exactly.
        let attr = Attribution::from_path(&path);
        assert!(
            attr.residual_s().abs() < 1e-12,
            "attribution residue {:.3e} s",
            attr.residual_s()
        );

        // Span-attributed time on the path (everything except untraced
        // gaps) is bounded by the total recorded span time.
        let total_span_ns: u64 = dag
            .ranks
            .iter()
            .flat_map(|r| r.spans.iter().map(|s| s.dur_ns))
            .sum();
        let on_span_ns = path.length_ns() - path.total_ns(PathCat::Other);
        assert!(
            on_span_ns <= total_span_ns,
            "path claims {on_span_ns} ns of span time but the trace only recorded {total_span_ns} ns"
        );

        // The window covers the busiest rank (per-rank spans are disjoint).
        let busiest: u64 = dag
            .ranks
            .iter()
            .map(|r| r.spans.iter().map(|s| s.dur_ns).sum())
            .max()
            .unwrap_or(0);
        assert!(path.length_ns() >= busiest);

        // What-if bounds are bounds: never above measured (for zero-comm /
        // no-straggler), and perfect-overlap is the loosest of the three.
        let wi = what_if(&attr, &dag, w);
        assert!(wi.no_straggler_s <= attr.measured_s + 1e-12);
        assert!(wi.zero_comm_s <= wi.perfect_overlap_s + 1e-12);

        // Determinism: the walk has no hidden state.
        let again = critical_path(&dag, w).unwrap();
        assert_eq!(again.segments.len(), path.segments.len());
        for (a, b) in again.segments.iter().zip(&path.segments) {
            assert!(a.rank == b.rank && a.start_ns == b.start_ns && a.cat == b.cat);
        }
    });
}

/// Acceptance gate on the real trainer: a seeded `(p=2, t=2, d=2)` run's
/// per-iteration attribution categories sum to the measured iteration
/// time within 1%.
#[test]
fn real_ptdp_attribution_sums_within_one_percent() {
    use megatron_repro::dist::{PtdpSpec, PtdpTrainer, RunControl};
    use megatron_repro::telemetry::{
        chrome_trace_json, parse_chrome_trace, SinkConfig, TelemetrySink,
    };
    use megatron_repro::tensor::gpt::{GptModel, TinyGptConfig};

    let cfg = TinyGptConfig {
        vocab: 13,
        seq: 8,
        hidden: 32,
        heads: 4,
        layers: 2,
    };
    let (p, iters, batch) = (2usize, 2usize, 4usize);
    let spec = PtdpSpec::new(p, 2, 2);
    let sink = TelemetrySink::new(SinkConfig {
        world: spec.world(),
        ..Default::default()
    });
    let mut rng = StdRng::seed_from_u64(0xe36);
    let master = GptModel::new(cfg, &mut rng);
    let data: Vec<(Vec<usize>, Vec<usize>)> = (0..iters)
        .map(|_| {
            let toks = (0..batch * cfg.seq)
                .map(|_| rng.gen_range(0..cfg.vocab))
                .collect();
            let tgts = (0..batch * cfg.seq)
                .map(|_| rng.gen_range(0..cfg.vocab))
                .collect();
            (toks, tgts)
        })
        .collect();
    let ctl = RunControl {
        telemetry: Some(std::sync::Arc::clone(&sink)),
        ..Default::default()
    };
    let out = PtdpTrainer::new(master, spec).train_with(&data, ctl);
    assert!(out.error.is_none(), "real run failed: {:?}", out.error);

    let trace = chrome_trace_json(&sink.hub, p);
    let dag = parse_chrome_trace(&trace, p).expect("real trace builds a DAG");
    assert_eq!(dag.ranks.len(), spec.world());
    for it in 0..iters {
        let path = critical_path(&dag, Window::iteration(it as u64)).expect("iteration has spans");
        assert!(!path.truncated);
        let a = Attribution::from_path(&path);
        assert!(
            a.residual_s().abs() <= 0.01 * a.measured_s.max(1e-12),
            "iter {it}: residue {:.3e} s of {:.3e} s measured",
            a.residual_s(),
            a.measured_s
        );
        // The path must actually stand on traced work, not just gaps.
        assert!(a.compute_s > 0.0, "iter {it}: no on-path compute");
    }
}
