//! Cross-crate integration: the reliability loop end-to-end — durable
//! sharded checkpoints on disk, restore across process-lifetime and
//! topology boundaries, and supervised auto-recovery through injected
//! rank kills.

use std::fs;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use megatron_repro::dist::{
    CapacityEvent, CheckpointStore, KillSwitch, PtdpSpec, PtdpTrainer, ReconfigureDirection,
    RunControl, Supervisor, SupervisorConfig,
};
use megatron_repro::tensor::gpt::{GptModel, TinyGptConfig};
use megatron_repro::tensor::Adam;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn cfg() -> TinyGptConfig {
    TinyGptConfig {
        vocab: 13,
        seq: 6,
        hidden: 8,
        heads: 4,
        layers: 2,
    }
}

fn make_data(
    c: TinyGptConfig,
    batch: usize,
    iters: usize,
    seed: u64,
) -> Vec<(Vec<usize>, Vec<usize>)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..iters)
        .map(|_| {
            let toks: Vec<usize> = (0..batch * c.seq)
                .map(|_| rng.gen_range(0..c.vocab))
                .collect();
            let tgts: Vec<usize> = (0..batch * c.seq)
                .map(|_| rng.gen_range(0..c.vocab))
                .collect();
            (toks, tgts)
        })
        .collect()
}

fn tmp_root(name: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!("mgrec-{}-{name}", std::process::id()));
    let _ = fs::remove_dir_all(&root);
    root
}

fn fast_sup(checkpoint_every: usize) -> SupervisorConfig {
    SupervisorConfig {
        checkpoint_every,
        backoff_base: Duration::from_millis(1),
        backoff_max: Duration::from_millis(5),
        ..SupervisorConfig::default()
    }
}

/// Save to disk, drop every piece of in-memory state, restore from the
/// shard files alone, resume: final weights and the loss tail must match
/// an uninterrupted run bit-for-bit.
#[test]
fn durable_resume_is_bit_identical() {
    let c = cfg();
    let mut rng = StdRng::seed_from_u64(41);
    let master = GptModel::new(c, &mut rng);
    let data = make_data(c, 4, 8, 410);
    let spec = PtdpSpec::new(2, 1, 2);
    let trainer = PtdpTrainer::new(master, spec);

    let clean = trainer.train(&data);

    let root = tmp_root("durable");
    {
        // A run that checkpoints durably and dies at iteration 5.
        let store = CheckpointStore::open(&root).unwrap();
        let out = trainer.train_with(
            &data,
            RunControl {
                checkpoint_every: Some(2),
                kill: Some(KillSwitch {
                    thread: (1, 0, 0),
                    iteration: 5,
                }),
                durable: Some(store),
                ..RunControl::default()
            },
        );
        assert!(out.error.is_some(), "the kill must abort the run");
        // `store`, `out`, and every in-memory snapshot drop here; only the
        // files under `root` survive.
    }

    let store = CheckpointStore::open(&root).unwrap();
    let restored = store.load_latest(&spec, c).expect("durable generation");
    assert_eq!(restored.generation, 4, "newest complete generation");
    assert!(!restored.cross_topology);
    let out = trainer.train_with(
        &data,
        RunControl {
            restore: Some(restored.snapshot),
            ..RunControl::default()
        },
    );
    assert!(out.error.is_none(), "resume failed: {:?}", out.error);
    assert_eq!(out.log.losses[4..], clean.losses[4..], "loss tail");
    assert_eq!(out.log.final_params, clean.final_params, "final weights");
    let _ = fs::remove_dir_all(root);
}

/// The acceptance scenario: two mid-run rank kills, supervised recovery
/// with zero manual intervention, and a final state bit-for-bit equal to
/// the fault-free run after the same iteration count.
#[test]
fn supervisor_survives_two_kills_bit_for_bit() {
    let c = cfg();
    let mut rng = StdRng::seed_from_u64(43);
    let master = GptModel::new(c, &mut rng);
    let data = make_data(c, 4, 10, 430);
    let spec = PtdpSpec::new(2, 1, 2);

    let clean = PtdpTrainer::new(master.clone(), spec).train(&data);

    let root = tmp_root("twokills");
    let store = CheckpointStore::open(&root).unwrap();
    let sup = Supervisor::new(master, spec, store, fast_sup(2));
    let kills = [
        KillSwitch {
            thread: (1, 1, 0),
            iteration: 3,
        },
        KillSwitch {
            thread: (0, 0, 0),
            iteration: 7,
        },
    ];
    let report = sup.run(&data, &kills);

    assert!(report.completed(), "gave up: {:?}", report.gave_up);
    assert_eq!(report.attempts, 3, "one restart per kill");
    assert_eq!(report.incidents.len(), 2);
    assert!(report.incidents.iter().all(|i| i.resumed_from > 0));
    assert_eq!(report.losses, clean.losses, "losses bit-for-bit");
    assert_eq!(
        report.final_params.as_ref(),
        Some(&clean.final_params),
        "weights bit-for-bit"
    );
    let _ = fs::remove_dir_all(root);
}

/// Elastic restart on a shrunken cluster: a checkpoint taken at
/// (p=2, t=2, d=2) restores into (p=1, t=2, d=2) via the canonical
/// layout, and the resumed run tracks serial training end-to-end.
#[test]
fn cross_topology_restore_resumes_on_shrunken_cluster() {
    let c = cfg();
    let mut rng = StdRng::seed_from_u64(47);
    let master = GptModel::new(c, &mut rng);
    let data = make_data(c, 4, 8, 470);
    let from = PtdpSpec::new(2, 2, 2);

    let root = tmp_root("crosstopo");
    let store = CheckpointStore::open(&root).unwrap();
    let out = PtdpTrainer::new(master.clone(), from).train_with(
        &data,
        RunControl {
            checkpoint_every: Some(4),
            kill: Some(KillSwitch {
                thread: (1, 1, 1),
                iteration: 6,
            }),
            durable: Some(Arc::clone(&store)),
            ..RunControl::default()
        },
    );
    assert!(out.error.is_some());

    // "Two GPUs never came back": resume at half the pipeline depth.
    let to = PtdpSpec::new(1, 2, 2);
    let restored = store.load_latest(&to, c).expect("canonical layout");
    assert!(restored.cross_topology);
    assert_eq!(restored.snapshot.next_iter, 4);
    let resumed = PtdpTrainer::new(master.clone(), to).train_with(
        &data,
        RunControl {
            restore: Some(restored.snapshot),
            ..RunControl::default()
        },
    );
    assert!(resumed.error.is_none(), "{:?}", resumed.error);

    // Reference: serial training over all 8 iterations with one continuous
    // Adam (the checkpoint carries the moments, so the resumed run must
    // track it within f32 reduction drift — bit-identity is impossible
    // across topologies because the reduction order changes).
    let mut serial = master;
    let mut adam = Adam::new(from.lr);
    let batch = data[0].0.len() / c.seq;
    let mut serial_losses = Vec::new();
    for (toks, tgts) in &data {
        serial.zero_grads();
        serial_losses.push(serial.loss_and_grad(toks, tgts, batch));
        let mut pairs = serial.param_grad_pairs();
        adam.step(&mut pairs);
    }
    for (i, (got, want)) in resumed.log.losses[4..]
        .iter()
        .zip(&serial_losses[4..])
        .enumerate()
    {
        assert!(
            (got - want).abs() < 5e-3,
            "iteration {}: resumed loss {got} vs serial {want}",
            i + 4
        );
    }
    let mut assembled = resumed.log.assemble(c, &to);
    let mut diff = 0.0f32;
    let mut sv = Vec::new();
    serial.visit(&mut |p, _| sv.extend_from_slice(p));
    let mut av = Vec::new();
    assembled.visit(&mut |p, _| av.extend_from_slice(p));
    for (a, s) in av.iter().zip(&sv) {
        diff = diff.max((a - s).abs());
    }
    assert!(diff < 5e-3, "resumed model diverged from serial by {diff}");
    let _ = fs::remove_dir_all(root);
}

/// Elastic shrink with no capacity return: the supervisor drops to the
/// cost model's best degraded (p, t, d), finishes there, and the
/// post-shrink trajectory is bit-identical to a FRESH launch at that
/// degraded topology restored from the same checkpoint generation.
#[test]
fn elastic_shrink_is_bit_identical_to_fresh_degraded_launch() {
    let c = cfg();
    let mut rng = StdRng::seed_from_u64(59);
    let master = GptModel::new(c, &mut rng);
    let data = make_data(c, 4, 10, 590);
    let spec = PtdpSpec::new(2, 2, 2);
    let kill = KillSwitch {
        thread: (1, 1, 1),
        iteration: 5,
    };

    let root = tmp_root("elshrink");
    let store = CheckpointStore::open(&root).unwrap();
    let sup = Supervisor::new(master.clone(), spec, store, fast_sup(2));
    let report = sup.run_elastic(&data, &[kill], &[]);
    assert!(report.completed(), "gave up: {:?}", report.gave_up);
    assert_eq!(report.reconfigurations.len(), 1, "one shrink, no grow");
    let rc = report.reconfigurations[0];
    assert_eq!(rc.direction, ReconfigureDirection::Shrink);
    assert_eq!(rc.from, (2, 2, 2));
    assert_eq!(
        rc.generation, 4,
        "restored from the boundary before the kill"
    );
    let to = PtdpSpec {
        pipeline: rc.to.0,
        tensor: rc.to.1,
        data: rc.to.2,
        ..spec
    };
    assert!(to.world() <= 7, "must fit the surviving capacity");

    // Replication: a fresh doomed full-topology run writes the same
    // generations, then a FRESH degraded launch restores generation 4 and
    // trains to the end — it must match the elastic run bit-for-bit.
    let root2 = tmp_root("elshrink-ref");
    let store2 = CheckpointStore::open(&root2).unwrap();
    let doomed = PtdpTrainer::new(master.clone(), spec).train_with(
        &data,
        RunControl {
            checkpoint_every: Some(2),
            kill: Some(kill),
            durable: Some(Arc::clone(&store2)),
            ..RunControl::default()
        },
    );
    assert!(doomed.error.is_some());
    let restored = store2.load_latest(&to, c).expect("canonical layout");
    assert_eq!(restored.generation, 4);
    assert!(restored.cross_topology);
    let fresh = PtdpTrainer::new(master, to).train_with(
        &data,
        RunControl {
            restore: Some(restored.snapshot),
            ..RunControl::default()
        },
    );
    assert!(fresh.error.is_none(), "{:?}", fresh.error);
    assert_eq!(report.losses[4..], fresh.log.losses[4..], "loss tail");
    assert_eq!(
        report.final_params.as_ref(),
        Some(&fresh.log.final_params),
        "final weights bit-for-bit at the degraded topology"
    );
    let _ = fs::remove_dir_all(root);
    let _ = fs::remove_dir_all(root2);
}

/// Elastic shrink then grow: capacity returns mid-degraded-run and the
/// supervisor grows back to the launch topology at the NEXT checkpoint
/// boundary — never mid-interval — and the post-grow trajectory is
/// bit-identical to a fresh full-topology launch from that boundary.
#[test]
fn elastic_grows_back_at_checkpoint_boundary() {
    let c = cfg();
    let mut rng = StdRng::seed_from_u64(61);
    let master = GptModel::new(c, &mut rng);
    let data = make_data(c, 4, 12, 610);
    let spec = PtdpSpec::new(2, 2, 2);
    let kill = KillSwitch {
        thread: (0, 1, 0),
        iteration: 5,
    };
    // The rank comes back at iteration 7; with checkpoints every 2 the
    // grow must wait for the boundary at iteration 8.
    let returned = [CapacityEvent::Returned {
        iteration: 7,
        ranks: 1,
    }];

    let root = tmp_root("elgrow");
    let store = CheckpointStore::open(&root).unwrap();
    let sup = Supervisor::new(master.clone(), spec, store, fast_sup(2));
    let report = sup.run_elastic(&data, &[kill], &returned);
    assert!(report.completed(), "gave up: {:?}", report.gave_up);
    assert_eq!(report.reconfigurations.len(), 2, "shrink then grow");
    let shrink = report.reconfigurations[0];
    let grow = report.reconfigurations[1];
    assert_eq!(shrink.direction, ReconfigureDirection::Shrink);
    assert_eq!(shrink.generation, 4);
    assert_eq!(grow.direction, ReconfigureDirection::Grow);
    assert_eq!(grow.at_iter, 8, "boundary after the iteration-7 return");
    assert_eq!(grow.generation, 8);
    assert_eq!(grow.to, (2, 2, 2), "back to the launch topology");
    assert_eq!(report.restarts, 1, "the grow is a launch, not a restart");

    // Replication: doomed full run -> fresh degraded launch over the
    // degraded window -> fresh full launch from the grow boundary.
    let degraded = PtdpSpec {
        pipeline: shrink.to.0,
        tensor: shrink.to.1,
        data: shrink.to.2,
        ..spec
    };
    let root2 = tmp_root("elgrow-ref");
    let store2 = CheckpointStore::open(&root2).unwrap();
    let doomed = PtdpTrainer::new(master.clone(), spec).train_with(
        &data,
        RunControl {
            checkpoint_every: Some(2),
            kill: Some(kill),
            durable: Some(Arc::clone(&store2)),
            ..RunControl::default()
        },
    );
    assert!(doomed.error.is_some());
    let restored = store2.load_latest(&degraded, c).expect("canonical layout");
    assert_eq!(restored.generation, 4);
    let mid = PtdpTrainer::new(master.clone(), degraded).train_with(
        &data[..8],
        RunControl {
            checkpoint_every: Some(2),
            restore: Some(restored.snapshot),
            durable: Some(Arc::clone(&store2)),
            ..RunControl::default()
        },
    );
    assert!(mid.error.is_none(), "{:?}", mid.error);
    assert_eq!(report.losses[4..8], mid.log.losses[4..8], "degraded window");
    let regrown = store2.load_latest(&spec, c).expect("boundary generation");
    assert_eq!(regrown.generation, 8);
    let tail = PtdpTrainer::new(master, spec).train_with(
        &data,
        RunControl {
            restore: Some(regrown.snapshot),
            ..RunControl::default()
        },
    );
    assert!(tail.error.is_none(), "{:?}", tail.error);
    assert_eq!(report.losses[8..], tail.log.losses[8..], "post-grow tail");
    assert_eq!(
        report.final_params.as_ref(),
        Some(&tail.log.final_params),
        "final weights bit-for-bit after growing back"
    );
    let _ = fs::remove_dir_all(root);
    let _ = fs::remove_dir_all(root2);
}

/// When failures eat the whole cluster, the elastic supervisor reports a
/// clean give-up instead of hanging or panicking.
#[test]
fn elastic_gives_up_cleanly_when_capacity_hits_zero() {
    let c = cfg();
    let mut rng = StdRng::seed_from_u64(67);
    let master = GptModel::new(c, &mut rng);
    let data = make_data(c, 4, 10, 670);
    let spec = PtdpSpec::new(1, 1, 2);
    let kills = [
        KillSwitch {
            thread: (0, 1, 0),
            iteration: 3,
        },
        KillSwitch {
            thread: (0, 0, 0),
            iteration: 6,
        },
    ];

    let root = tmp_root("elzero");
    let store = CheckpointStore::open(&root).unwrap();
    let sup = Supervisor::new(master, spec, store, fast_sup(2));
    let report = sup.run_elastic(&data, &kills, &[]);
    assert!(!report.completed(), "no capacity left to run on");
    assert!(report.gave_up.is_some());
    assert_eq!(report.reconfigurations.len(), 1, "shrank once, then died");
    assert_eq!(report.reconfigurations[0].to, (1, 1, 1));
    let _ = fs::remove_dir_all(root);
}

/// Corruption mid-flight: with the newest generation torn on disk, the
/// loader falls back to the previous complete one and the job still
/// finishes with the right weights.
#[test]
fn corrupt_generation_falls_back_and_completes() {
    let c = cfg();
    let mut rng = StdRng::seed_from_u64(53);
    let master = GptModel::new(c, &mut rng);
    let data = make_data(c, 4, 8, 530);
    let spec = PtdpSpec::new(2, 1, 1);
    let trainer = PtdpTrainer::new(master, spec);

    let clean = trainer.train(&data);

    let root = tmp_root("corrupt");
    let store = CheckpointStore::open(&root).unwrap();
    let out = trainer.train_with(
        &data,
        RunControl {
            checkpoint_every: Some(2),
            kill: Some(KillSwitch {
                thread: (0, 0, 0),
                iteration: 7,
            }),
            durable: Some(Arc::clone(&store)),
            ..RunControl::default()
        },
    );
    assert!(out.error.is_some());

    // Truncate a shard of the newest generation (gen-6): torn write.
    let victim = root.join("gen-00000006").join("shard-p0-d0-t0.bin");
    let bytes = fs::read(&victim).unwrap();
    fs::write(&victim, &bytes[..bytes.len() / 3]).unwrap();

    let restored = store.load_latest(&spec, c).expect("older generation");
    assert_eq!(restored.generation, 4, "fell back over the torn gen-6");
    assert!(!restored.notes.is_empty());
    let out = trainer.train_with(
        &data,
        RunControl {
            restore: Some(restored.snapshot),
            ..RunControl::default()
        },
    );
    assert!(out.error.is_none());
    assert_eq!(out.log.final_params, clean.final_params);
    let _ = fs::remove_dir_all(root);
}
