//! Integration tests of the serving path: KV-cache equivalence against the
//! training engine's forward pass, chunked-prefill invariance, and
//! scheduler determinism through the full `serve()` stack.

use megatron_repro::dist::Group;
use megatron_repro::serve::{
    generate, serve, RankEngine, SeqBatchEntry, ServeConfig, TrafficConfig,
};
use megatron_repro::sim::serving::BatchPolicy;
use megatron_repro::tensor::gpt::{GptModel, TinyGptConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn model(cfg: TinyGptConfig, seed: u64) -> GptModel {
    GptModel::new(cfg, &mut StdRng::seed_from_u64(seed))
}

/// Feed `tokens` through a rank engine in the given row chunks, returning
/// the concatenated logits rows (one per position).
fn decode_in_chunks(m: &GptModel, t: usize, tokens: &[usize], chunks: &[usize]) -> Vec<Vec<f32>> {
    assert_eq!(chunks.iter().sum::<usize>(), tokens.len());
    let group = Group::new(t);
    let rows = std::thread::scope(|s| {
        let handles: Vec<_> = (0..t)
            .map(|rank| {
                let member = group.member(rank);
                s.spawn(move || {
                    let engine = RankEngine::from_serial(m, t, rank);
                    let mut caches = engine.new_cache();
                    let mut out: Vec<Vec<f32>> = Vec::new();
                    let mut pos = 0usize;
                    for &chunk in chunks {
                        let mut entries = [SeqBatchEntry {
                            tokens: &tokens[pos..pos + chunk],
                            start_pos: pos,
                            caches: &mut caches,
                        }];
                        let logits = engine.forward_step(&mut entries, &member);
                        for r in 0..logits.rows() {
                            out.push(logits.row(r).to_vec());
                        }
                        pos += chunk;
                    }
                    out
                })
            })
            .collect();
        let mut all: Vec<Vec<Vec<f32>>> = handles
            .into_iter()
            .map(|h| h.join().expect("rank thread"))
            .collect();
        for other in all.iter().skip(1) {
            assert_eq!(other, &all[0], "ranks produced different logits");
        }
        all.swap_remove(0)
    });
    rows
}

fn assert_rows_bit_identical(a: &[Vec<f32>], b: &[Vec<f32>], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: row counts differ");
    for (p, (ra, rb)) in a.iter().zip(b).enumerate() {
        assert_eq!(ra.len(), rb.len(), "{what}: row {p} widths differ");
        for (c, (x, y)) in ra.iter().zip(rb).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "{what}: row {p} col {c}: {x} != {y}"
            );
        }
    }
}

#[test]
fn incremental_decode_matches_training_forward_at_t1() {
    // The serving engine at t=1 against the *training* engine's forward:
    // causal attention means the full-sequence forward's row p equals the
    // incremental decode's row at position p, to the bit. seq=11 so no
    // split is round.
    let cfg = TinyGptConfig {
        vocab: 17,
        seq: 11,
        hidden: 24,
        heads: 6,
        layers: 3,
    };
    let m = model(cfg, 0xabc1);
    let mut rng = StdRng::seed_from_u64(42);
    let tokens: Vec<usize> = (0..cfg.seq).map(|_| rng.gen_range(0..cfg.vocab)).collect();

    let (full, _) = m.forward(&tokens, 1);
    let full_rows: Vec<Vec<f32>> = (0..cfg.seq).map(|r| full.row(r).to_vec()).collect();

    for chunks in [
        vec![11],
        vec![5, 1, 1, 1, 1, 1, 1],
        vec![1; 11],
        vec![3, 4, 4],
    ] {
        let inc = decode_in_chunks(&m, 1, &tokens, &chunks);
        assert_rows_bit_identical(&inc, &full_rows, &format!("chunks {chunks:?}"));
    }
}

#[test]
fn incremental_matches_full_prefix_recompute_at_t2() {
    // At t=2 the all-reduce changes the summation grouping, so the serial
    // forward is not the reference — the full-prefix *recompute through
    // the same parallel engine* is. Odd length (9) and odd head split
    // (6 heads / 2 ranks = 3 each) keep every boundary non-round.
    let cfg = TinyGptConfig {
        vocab: 23,
        seq: 9,
        hidden: 24,
        heads: 6,
        layers: 2,
    };
    let m = model(cfg, 0xabc2);
    let mut rng = StdRng::seed_from_u64(43);
    let tokens: Vec<usize> = (0..cfg.seq).map(|_| rng.gen_range(0..cfg.vocab)).collect();

    let recompute = decode_in_chunks(&m, 2, &tokens, &[9]);
    for chunks in [vec![1; 9], vec![4, 1, 1, 1, 1, 1], vec![2, 3, 4]] {
        let inc = decode_in_chunks(&m, 2, &tokens, &chunks);
        assert_rows_bit_identical(&inc, &recompute, &format!("t=2 chunks {chunks:?}"));
    }
}

#[test]
fn outputs_invariant_to_batching_policy() {
    // Bit-identical per-sequence math means generated tokens cannot depend
    // on *who else* shares the batch: sweeping admission caps and prefill
    // chunking must leave every request's output unchanged (only timing
    // and admission order move).
    let cfg = TinyGptConfig {
        vocab: 19,
        seq: 48,
        hidden: 24,
        heads: 6,
        layers: 2,
    };
    let m = model(cfg, 0xabc3);
    let reqs = generate(&TrafficConfig {
        requests: 10,
        seed: 11,
        mean_interarrival: 10.0,
        prompt_len: (3, 9),
        max_new: (2, 6),
        vocab: cfg.vocab,
    });
    let run = |max_seqs: usize, prefill_chunk: usize| {
        serve(
            &m,
            &ServeConfig {
                tensor_parallel: 2,
                policy: BatchPolicy {
                    max_seqs,
                    max_live_tokens: 96,
                    prefill_chunk,
                },
            },
            &reqs,
            None,
        )
        .outputs
    };
    let reference = run(4, 0);
    assert_eq!(reference.len(), 10);
    for (max_seqs, chunk) in [(1, 0), (2, 3), (4, 1), (8, 5)] {
        assert_eq!(
            run(max_seqs, chunk),
            reference,
            "outputs changed under policy (max_seqs {max_seqs}, chunk {chunk})"
        );
    }
}

#[test]
fn scheduler_is_deterministic_across_runs() {
    let cfg = TinyGptConfig {
        vocab: 19,
        seq: 48,
        hidden: 24,
        heads: 6,
        layers: 2,
    };
    let m = model(cfg, 0xabc4);
    let reqs = generate(&TrafficConfig {
        requests: 12,
        seed: 77,
        mean_interarrival: 8.0,
        prompt_len: (3, 9),
        max_new: (2, 6),
        vocab: cfg.vocab,
    });
    let cfg2 = ServeConfig {
        tensor_parallel: 2,
        policy: BatchPolicy {
            max_seqs: 3,
            max_live_tokens: 64,
            prefill_chunk: 4,
        },
    };
    let a = serve(&m, &cfg2, &reqs, None);
    let b = serve(&m, &cfg2, &reqs, None);
    assert_eq!(a.summary.admission_order, b.summary.admission_order);
    assert_eq!(a.summary.steps, b.summary.steps);
    assert_eq!(a.outputs, b.outputs);
    // Queueing really happened (otherwise the caps tested nothing) and
    // every request still finished.
    assert!(a.summary.peak_running <= 3);
    assert_eq!(a.summary.requests.len(), 12);
    for r in &a.summary.requests {
        assert!(r.done_s >= r.first_token_s && r.first_token_s >= r.eligible_s);
    }
}

#[test]
fn serve_rejects_requests_longer_than_the_model() {
    let cfg = TinyGptConfig {
        vocab: 19,
        seq: 8,
        hidden: 24,
        heads: 6,
        layers: 1,
    };
    let m = model(cfg, 0xabc5);
    let reqs = generate(&TrafficConfig {
        requests: 1,
        seed: 1,
        mean_interarrival: 1.0,
        prompt_len: (7, 7),
        max_new: (4, 4), // kv budget 10 > seq 8
        vocab: cfg.vocab,
    });
    let result = std::panic::catch_unwind(|| {
        serve(
            &m,
            &ServeConfig {
                tensor_parallel: 1,
                policy: BatchPolicy::default(),
            },
            &reqs,
            None,
        )
    });
    assert!(result.is_err(), "oversized request must be rejected");
}
