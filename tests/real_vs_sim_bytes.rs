//! The tentpole acceptance test: **real == simulated bytes is a structural
//! identity**, not a pair of formulas that happen to agree.
//!
//! A real (2,2,2) training run records, per thread, both the transport-
//! measured egress ([`RankCommVolume`]) and a replayable comm-op tape
//! ([`RankCommOps`]). Replaying that tape onto `megatron-net`'s
//! discrete-event links — the *same* `megatron-collective` step programs,
//! lowered instead of executed — must reproduce every GPU's byte total
//! exactly, because both sides count the identical transport-level
//! messages.

use std::collections::HashMap;

use megatron_repro::cluster::ClusterSpec;
use megatron_repro::collective::Program;
use megatron_repro::dist::{CollectiveOp, PtdpSpec, PtdpTrainer, RankCommOps, ThreadKey, TrainLog};
use megatron_repro::net::Network;
use megatron_repro::sim::DagSim;
use megatron_repro::tensor::gpt::{GptModel, TinyGptConfig};
use rand::{Rng, SeedableRng};

fn make_data(cfg: TinyGptConfig, batch: usize, iters: usize) -> Vec<(Vec<usize>, Vec<usize>)> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(11);
    (0..iters)
        .map(|_| {
            let toks: Vec<usize> = (0..batch * cfg.seq)
                .map(|_| rng.gen_range(0..cfg.vocab))
                .collect();
            let tgts: Vec<usize> = (0..batch * cfg.seq)
                .map(|_| rng.gen_range(0..cfg.vocab))
                .collect();
            (toks, tgts)
        })
        .collect()
}

/// The trainer's flat rank layout: pipeline outermost, tensor innermost.
fn gpu_of(spec: &PtdpSpec, key: ThreadKey) -> usize {
    let (pi, di, ti) = key;
    pi * (spec.data * spec.tensor) + di * spec.tensor + ti
}

/// Rebuild a recorded op's step program with lengths in wire bytes (the
/// net-side convention: one program element = one byte).
fn program_in_bytes(op: &CollectiveOp, ranks: usize) -> Program {
    CollectiveOp {
        kind: op.kind,
        elems: op.elems * 4, // f32 elements → bytes
    }
    .program(ranks)
}

/// Replay every thread's tape onto a fresh simulated cluster and assert
/// per-GPU egress equality with the real run's measured volumes.
fn assert_real_equals_sim(spec: &PtdpSpec, log: &TrainLog) {
    let (p, t, d) = (spec.pipeline, spec.tensor, spec.data);
    assert_eq!(log.comm_ops.len(), spec.world(), "every thread left a tape");

    let mut sim = DagSim::new();
    let net = Network::new(&mut sim, ClusterSpec::selene(8));

    // Tensor groups: ranks (pi, di, 0..t). SPMD: every member recorded the
    // same tape, so each group's collectives are lowered exactly once.
    for pi in 0..p {
        for di in 0..d {
            let tape = &log.comm_ops[&(pi, di, 0)].tensor;
            for ti in 1..t {
                assert_eq!(
                    tape,
                    &log.comm_ops[&(pi, di, ti)].tensor,
                    "tensor group ({pi},{di}) members disagree on the tape"
                );
            }
            let gpus: Vec<usize> = (0..t).map(|ti| gpu_of(spec, (pi, di, ti))).collect();
            for op in tape {
                let prog = program_in_bytes(op, t);
                net.lower_program(&mut sim, &prog, &gpus, &[], 0);
            }
        }
    }

    // Data-parallel groups: ranks (pi, 0..d, ti).
    for pi in 0..p {
        for ti in 0..t {
            let tape = &log.comm_ops[&(pi, 0, ti)].data;
            for di in 1..d {
                assert_eq!(
                    tape,
                    &log.comm_ops[&(pi, di, ti)].data,
                    "data group ({pi},{ti}) members disagree on the tape"
                );
            }
            let gpus: Vec<usize> = (0..d).map(|di| gpu_of(spec, (pi, di, ti))).collect();
            for op in tape {
                let prog = program_in_bytes(op, d);
                net.lower_program(&mut sim, &prog, &gpus, &[], 0);
            }
        }
    }

    // Pipeline p2p sends, straight from each thread's tape.
    for (key, ops) in &log.comm_ops {
        for (dest, elems) in &ops.p2p_sends {
            net.send(
                &mut sim,
                gpu_of(spec, *key),
                gpu_of(spec, *dest),
                (*elems as u64) * 4,
                &[],
                0,
            );
        }
    }

    // The identity: per GPU, simulated egress == transport-measured bytes.
    let mut total = 0.0f64;
    for (key, vol) in &log.comm_volumes {
        let gpu = gpu_of(spec, *key);
        let real = vol.total_bytes();
        let simulated = net.sent_bytes(gpu) as f64;
        assert_eq!(
            simulated, real,
            "GPU {gpu} (thread {key:?}): sim {simulated} B != real {real} B"
        );
        total += real;
    }
    assert!(total > 0.0, "run moved no bytes — vacuous identity");
}

fn run(spec: PtdpSpec) -> TrainLog {
    let cfg = TinyGptConfig {
        vocab: 13,
        seq: 6,
        hidden: 8,
        heads: 4,
        layers: 2,
    };
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let master = GptModel::new(cfg, &mut rng);
    let data = make_data(cfg, 8, 2);
    PtdpTrainer::new(master, spec).train(&data)
}

#[test]
fn ptdp_222_bytes_match_simulator_exactly() {
    let mut spec = PtdpSpec::new(2, 2, 2);
    spec.microbatch = 1;
    let log = run(spec);
    // Sanity: the tape is not empty on any axis.
    let ops: &RankCommOps = &log.comm_ops[&(0, 0, 0)];
    assert!(!ops.tensor.is_empty(), "no tensor collectives recorded");
    assert!(!ops.data.is_empty(), "no data collectives recorded");
    assert!(!ops.p2p_sends.is_empty(), "no p2p sends recorded");
    assert_real_equals_sim(&spec, &log);
}

#[test]
fn ptdp_222_sharded_optimizer_bytes_match_simulator_exactly() {
    // ZeRO-1 adds reduce-scatter + all-gather to the data-group tape; the
    // identity must survive the richer op mix.
    let mut spec = PtdpSpec::new(2, 2, 2);
    spec.microbatch = 1;
    spec.shard_optimizer = true;
    let log = run(spec);
    assert_real_equals_sim(&spec, &log);
}

#[test]
fn comm_op_tape_is_internally_consistent() {
    // Cross-check the tape against the measured volumes without the
    // simulator in the loop: replaying each thread's programs alone
    // accounts for every byte the transport counted.
    let mut spec = PtdpSpec::new(2, 2, 2);
    spec.microbatch = 1;
    let log = run(spec);
    let mut by_thread: HashMap<ThreadKey, f64> = HashMap::new();
    for (key @ (_, di, ti), ops) in &log.comm_ops {
        by_thread.insert(*key, ops.total_bytes(spec.tensor, *ti, spec.data, *di));
    }
    for (key, vol) in &log.comm_volumes {
        assert_eq!(by_thread[key], vol.total_bytes(), "thread {key:?}");
    }
}
